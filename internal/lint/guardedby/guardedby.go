// Package guardedby checks `// guarded by <mu>` annotations: every read or
// write of an annotated struct field, package variable or local must happen
// with the named sync.Mutex/RWMutex provably held.
//
// The proof uses the shared heldset dataflow (the same engine as lockorder)
// plus one interprocedural step: a fixpoint over same-package call sites
// computes, for each unexported function that is never referenced as a
// value, the set of locks held at *every* call site — so a helper like
// maybeDrainedLocked, only ever invoked under connMu, is analyzed with
// connMu in its initial held set instead of being flagged line by line.
// Exported functions and functions whose address escapes start from an empty
// held set (their callers are unknown).
//
// Annotations on exported fields of exported structs are published as facts,
// so a downstream package touching such a field without the lock is flagged
// too. Deferred closures are walked with the held set at the defer
// statement; stored closures with an empty held set (their eventual caller's
// locks are unknown).
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/heldset"
)

// Analyzer reports accesses to guarded-by-annotated state without the lock.
var Analyzer = &lint.Analyzer{
	Name: "guardedby",
	Doc: `flag access to '// guarded by <mu>' annotated state without the mutex held

A comment "guarded by <mu>" on a struct field, package variable or local
variable declaration names the sync.Mutex/RWMutex that must be held at every
read or write. The analyzer tracks the held set in statement order (branches
merge by intersection, goroutine bodies start empty) and infers, for
unexported functions never used as values, the locks held at all call sites.
Annotations on exported fields of exported structs propagate to downstream
packages via facts. Struct-literal construction is exempt — a value being
built is not yet shared.`,
	Run:          run,
	ExportsFacts: true,
	FactTypes:    []string{"guardFact"},
}

// annotRe extracts the guard name from a declaration comment.
var annotRe = regexp.MustCompile(`\bguarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// guardFact is the exported annotation for one exported struct field: the
// name of the sibling field that guards it.
type guardFact struct {
	Guard string `json:"guard"`
}

func run(pass *lint.Pass) error {
	p := pass.Pkg.Path()
	if p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return nil
	}
	c := &checker{
		pass:         pass,
		decls:        make(map[*types.Func]*ast.FuncDecl),
		annots:       make(map[*types.Var]*types.Var),
		foreign:      make(map[*types.Var]*types.Var),
		requiredHeld: make(map[*types.Func]heldset.Held),
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	c.collectAnnotations()
	c.exportFacts()
	c.collectValueRefs()
	c.inferRequiredHeld()
	c.report()
	return nil
}

type checker struct {
	pass  *lint.Pass
	decls map[*types.Func]*ast.FuncDecl

	// annots maps each annotated variable or field to its guard mutex.
	annots map[*types.Var]*types.Var
	// foreign caches guard lookups for imported fields (nil = no annotation).
	foreign map[*types.Var]*types.Var
	// valueRefs marks same-package functions referenced outside a direct
	// call; their callers are unknowable, so they get an empty initial held
	// set.
	valueRefs map[*types.Func]bool
	// requiredHeld is the inferred initial held set per function: the locks
	// held at every observed call site.
	requiredHeld map[*types.Func]heldset.Held

	reporting bool
}

// mutexVar reports whether t is (a pointer to) sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// annotationIn extracts the guard name from a doc and/or line comment.
func annotationIn(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, cmt := range g.List {
			if m := annotRe.FindStringSubmatch(cmt.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// collectAnnotations walks the package's declarations for guarded-by
// comments on struct fields, package variables and locals, resolving each
// guard name to a mutex object.
func (c *checker) collectAnnotations() {
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch spec := spec.(type) {
					case *ast.TypeSpec:
						st, ok := spec.Type.(*ast.StructType)
						if !ok {
							continue
						}
						c.collectStruct(st)
					case *ast.ValueSpec:
						// A single-spec `var x T` attaches its doc comment to
						// the GenDecl, not the spec.
						doc := spec.Doc
						if doc == nil && len(d.Specs) == 1 {
							doc = d.Doc
						}
						guard := annotationIn(doc, spec.Comment)
						if guard == "" {
							continue
						}
						gv := c.packageMutex(guard)
						c.bindSpec(spec, guard, gv)
					}
				}
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					ds, ok := n.(*ast.DeclStmt)
					if !ok {
						return true
					}
					gd, ok := ds.Decl.(*ast.GenDecl)
					if !ok || gd.Tok != token.VAR {
						return true
					}
					for _, spec := range gd.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						doc := vs.Doc
						if doc == nil && len(gd.Specs) == 1 {
							doc = gd.Doc
						}
						guard := annotationIn(doc, vs.Comment)
						if guard == "" {
							continue
						}
						gv := c.localMutex(d, guard)
						if gv == nil {
							gv = c.packageMutex(guard)
						}
						c.bindSpec(vs, guard, gv)
					}
					return true
				})
			}
		}
	}
}

// collectStruct resolves guarded-by annotations on the fields of one struct
// type: the guard must be a sibling field or a package-level mutex.
func (c *checker) collectStruct(st *ast.StructType) {
	info := c.pass.TypesInfo
	// Guard candidates: the struct's own mutex fields by name.
	siblings := make(map[string]*types.Var)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok && isMutex(v.Type()) {
				siblings[name.Name] = v
			}
		}
	}
	for _, field := range st.Fields.List {
		guard := annotationIn(field.Doc, field.Comment)
		if guard == "" {
			continue
		}
		gv := siblings[guard]
		if gv == nil {
			gv = c.packageMutex(guard)
		}
		for _, name := range field.Names {
			v, ok := info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if gv == nil {
				c.pass.Reportf(name.Pos(), "guarded-by annotation on %s names %q, which is not a sync.Mutex/RWMutex sibling field or package variable", name.Name, guard)
				continue
			}
			c.annots[v] = gv
		}
	}
}

// bindSpec applies one resolved annotation to every name in a value spec.
func (c *checker) bindSpec(vs *ast.ValueSpec, guard string, gv *types.Var) {
	for _, name := range vs.Names {
		v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		if gv == nil {
			c.pass.Reportf(name.Pos(), "guarded-by annotation on %s names %q, which is not a sync.Mutex/RWMutex in scope", name.Name, guard)
			continue
		}
		c.annots[v] = gv
	}
}

// packageMutex resolves a guard name against package scope.
func (c *checker) packageMutex(name string) *types.Var {
	if v, ok := c.pass.Pkg.Scope().Lookup(name).(*types.Var); ok && isMutex(v.Type()) {
		return v
	}
	return nil
}

// localMutex resolves a guard name among the variables declared inside fd.
func (c *checker) localMutex(fd *ast.FuncDecl, name string) *types.Var {
	var found *types.Var
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != name {
			return true
		}
		if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && isMutex(v.Type()) {
			found = v
		}
		return true
	})
	return found
}

// exportFacts publishes annotations on exported fields of exported structs
// whose guard is a sibling field — the only shape a downstream package can
// both see and lock.
func (c *checker) exportFacts() {
	type entry struct {
		key   string
		guard string
	}
	var out []entry
	for v, gv := range c.annots {
		if !v.IsField() || !v.Exported() || !gv.IsField() {
			continue
		}
		owner := fieldOwnerType(c.pass.Pkg, v)
		if owner == nil || !owner.Exported() {
			continue
		}
		// The guard must live in the same struct for a downstream selector
		// chain to reach it.
		if fieldOwnerType(c.pass.Pkg, gv) != owner {
			continue
		}
		out = append(out, entry{owner.Name() + "." + v.Name(), gv.Name()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	for _, e := range out {
		_ = c.pass.ExportFact(e.key, guardFact{Guard: e.guard})
	}
}

// fieldOwnerType finds the package-scope named struct type declaring field v.
func fieldOwnerType(pkg *types.Package, v *types.Var) *types.TypeName {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn
			}
		}
	}
	return nil
}

// guardFor returns the guard mutex for v, consulting local annotations and —
// for fields imported from other module packages — exported facts.
func (c *checker) guardFor(v *types.Var) *types.Var {
	if gv, ok := c.annots[v]; ok {
		return gv
	}
	if !v.IsField() || v.Pkg() == nil || v.Pkg() == c.pass.Pkg {
		return nil
	}
	path := v.Pkg().Path()
	if path != lint.ModulePath && !strings.HasPrefix(path, lint.ModulePath+"/") {
		return nil
	}
	if gv, ok := c.foreign[v]; ok {
		return gv
	}
	var gv *types.Var
	if owner := fieldOwnerType(v.Pkg(), v); owner != nil {
		var fact guardFact
		if c.pass.ImportFact(path, owner.Name()+"."+v.Name(), &fact) {
			st := owner.Type().Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); f.Name() == fact.Guard {
					gv = f
					break
				}
			}
		}
	}
	c.foreign[v] = gv
	return gv
}

// collectValueRefs finds same-package functions referenced outside a direct
// call or go statement — stored, passed, compared — whose callers are
// therefore unknown.
func (c *checker) collectValueRefs() {
	info := c.pass.TypesInfo
	called := make(map[*ast.Ident]bool)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				called[fun] = true
			case *ast.SelectorExpr:
				called[fun.Sel] = true
			}
			return true
		})
	}
	c.valueRefs = make(map[*types.Func]bool)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || called[id] {
				return true
			}
			if fn, ok := info.Uses[id].(*types.Func); ok {
				if _, declared := c.decls[fn]; declared {
					c.valueRefs[fn] = true
				}
			}
			return true
		})
	}
}

// inferRequiredHeld computes the per-function initial held sets: the
// intersection of the held sets at every observed call site, grown to a
// fixpoint (held sets only grow as callers' own initial sets grow, so the
// iteration terminates).
func (c *checker) inferRequiredHeld() {
	for {
		calleeHeld := make(map[*types.Func]heldset.Held)
		sawCall := make(map[*types.Func]bool)
		intersect := func(fn *types.Func, held heldset.Held) {
			if !sawCall[fn] {
				sawCall[fn] = true
				calleeHeld[fn] = held.Clone()
				return
			}
			cur := calleeHeld[fn]
			for mv := range cur {
				if _, ok := held[mv]; !ok {
					delete(cur, mv)
				}
			}
		}
		c.walkAll(&heldset.Config{
			Info: c.pass.TypesInfo,
			OnCall: func(call *ast.CallExpr, held heldset.Held) {
				if g := c.calleeIn(call); g != nil {
					intersect(g, held)
				}
			},
			OnGo: func(g *ast.GoStmt) {
				// A spawned function starts on a fresh stack: its effective
				// call-site held set is empty.
				if fn := c.calleeIn(g.Call); fn != nil {
					intersect(fn, heldset.Held{})
				}
			},
			WalkDeferredClosures: true,
			WalkStoredClosures:   true,
		})
		changed := false
		for fn := range c.decls {
			var next heldset.Held
			if fn.Exported() || c.valueRefs[fn] || !sawCall[fn] {
				next = heldset.Held{}
			} else {
				next = calleeHeld[fn]
			}
			if len(next) != len(c.requiredHeld[fn]) {
				changed = true
			}
			c.requiredHeld[fn] = next
		}
		if !changed {
			return
		}
	}
}

// walkAll runs the held-set walker over every declared function, seeding
// each with its inferred initial held set.
func (c *checker) walkAll(cfg *heldset.Config) {
	var fds []*ast.FuncDecl
	byPos := make(map[*ast.FuncDecl]*types.Func)
	for fn, fd := range c.decls {
		fds = append(fds, fd)
		byPos[fd] = fn
	}
	sort.Slice(fds, func(i, j int) bool { return fds[i].Pos() < fds[j].Pos() })
	for _, fd := range fds {
		heldset.Walk(cfg, fd.Body, c.requiredHeld[byPos[fd]])
	}
}

// calleeIn resolves a call to a function declared in this package.
func (c *checker) calleeIn(call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = c.pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = c.pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if _, declared := c.decls[fn]; !declared {
		return nil
	}
	return fn
}

// report runs the final pass: every use of an annotated variable is checked
// against the held set at the access.
func (c *checker) report() {
	c.walkAll(&heldset.Config{
		Info: c.pass.TypesInfo,
		OnUse: func(x ast.Expr, v *types.Var, held heldset.Held) {
			gv := c.guardFor(v)
			if gv == nil {
				return
			}
			if _, ok := held[gv]; ok {
				return
			}
			c.pass.Reportf(x.Pos(), "%s accessed without holding %s (annotated: guarded by %s); acquire the lock, or reach this only from functions called with it held", heldset.ExprDisplay(x), gv.Name(), gv.Name())
		},
		WalkDeferredClosures: true,
		WalkStoredClosures:   true,
	})
}
