// Package g exercises the guardedby analyzer: annotated fields, package
// variables and locals, the call-site held-set inference, goroutines,
// closures and construction exemptions.
package g

import "sync"

// Registry models the obs registry shape: a map guarded by its sibling mu.
type Registry struct {
	mu sync.Mutex
	// fams is the family table. guarded by mu.
	fams map[string]int
	// hits counts lookups. guarded by mu.
	hits int
	// name is unannotated: free to touch.
	name string
}

// NewRegistry builds the value in a composite literal — construction is
// exempt, nothing else can see the value yet.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]int)}
}

// Get is the sanctioned access shape.
func (r *Registry) Get(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hits++
	return r.fams[k]
}

// Bad touches the table without the lock.
func (r *Registry) Bad(k string) int {
	return r.fams[k] // want `r\.fams accessed without holding mu`
}

// BadWrite drops the lock too early.
func (r *Registry) BadWrite(k string, v int) {
	r.mu.Lock()
	r.mu.Unlock()
	r.fams[k] = v // want `r\.fams accessed without holding mu`
}

// sizeLocked is only ever called with mu held; the call-site inference must
// discover that and accept the unlocked-looking access below.
func (r *Registry) sizeLocked() int {
	return len(r.fams)
}

// Size locks, then reaches the field through the helper.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sizeLocked()
}

// Snapshot copies under the lock inside a deferred closure (walked with the
// held set at the defer statement).
func (r *Registry) Snapshot() (out map[string]int) {
	r.mu.Lock()
	defer func() {
		out = make(map[string]int, len(r.fams))
		for k, v := range r.fams {
			out[k] = v
		}
		r.mu.Unlock()
	}()
	return nil
}

// Spawn shows a goroutine body starts with an empty held set even when the
// spawner holds the lock.
func (r *Registry) Spawn() {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() {
		r.hits++ // want `r\.hits accessed without holding mu`
	}()
	go func() {
		r.mu.Lock()
		r.hits++ // locked inside the goroutine: fine
		r.mu.Unlock()
	}()
}

// Stored closures run under unknown locks; accesses inside them must lock.
func (r *Registry) Hook() func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	return func() {
		r.hits++ // want `r\.hits accessed without holding mu`
	}
}

// pkgMu guards the package-level counter below.
var pkgMu sync.Mutex

// total is the process-wide count. guarded by pkgMu.
var total int

func Bump() {
	pkgMu.Lock()
	total++
	pkgMu.Unlock()
}

func BadBump() {
	total++ // want `total accessed without holding pkgMu`
}

// Locals follows the sim sweep shape: a worker-pool error slot guarded by a
// local mutex.
func Locals(n int) error {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
		// first records the first worker error. guarded by mu.
		first error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			if first == nil {
				first = nil
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return first
}

func BadLocals() error {
	var mu sync.Mutex
	// first is the error slot. guarded by mu.
	var first error
	_ = mu
	return first // want `first accessed without holding mu`
}

// badAnnotation names a guard that does not exist.
type badAnnotation struct {
	// n is broken. guarded by missing.
	n int // want `guarded-by annotation on n names "missing"`
}
