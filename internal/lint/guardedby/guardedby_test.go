package guardedby_test

import (
	"testing"

	"fafnet/internal/lint/guardedby"
	"fafnet/internal/lint/linttest"
)

func TestGuardedby(t *testing.T) {
	linttest.Run(t, guardedby.Analyzer, "testdata/g", "fafnet/internal/guardtestdata")
}

// TestOutOfModule checks the annotations are inert outside the module.
func TestOutOfModule(t *testing.T) {
	linttest.RunExpectNone(t, guardedby.Analyzer, "testdata/g", "example.com/external/g")
}
