// Package linttest is a dependency-free equivalent of
// golang.org/x/tools/go/analysis/analysistest: it type-checks a directory of
// test sources, runs an analyzer over them, and compares the diagnostics
// against // want "regexp" comments in the sources.
package linttest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"fafnet/internal/lint"
)

// wantRe matches a // want "pattern" or // want `pattern` expectation
// comment (the two quoting styles analysistest accepts).
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// expectation is one `// want` comment: the diagnostic pattern expected on
// its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run type-checks the package in dir (non-test .go files, stdlib imports
// only), runs the analyzer under the lint framework — including
// //lint:allow suppression — and asserts that diagnostics and // want
// comments agree one-to-one by line.
//
// pkgPath is the import path the package poses as; analyzers that scope
// themselves by package path (epslit, randsrc) see this value.
func Run(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	run(t, a, dir, pkgPath, true)
}

// RunExpectNone runs like Run but ignores // want comments and asserts the
// analyzer stays entirely silent — used to show a scoped analyzer's
// positives vanish when the same sources sit outside its scope.
func RunExpectNone(t *testing.T, a *lint.Analyzer, dir, pkgPath string) {
	t.Helper()
	run(t, a, dir, pkgPath, false)
}

func run(t *testing.T, a *lint.Analyzer, dir, pkgPath string, useWants bool) {
	t.Helper()
	pattern := filepath.Join(dir, "*.go")
	matches, err := filepath.Glob(pattern)
	if err != nil || len(matches) == 0 {
		t.Fatalf("no test sources under %s: %v", dir, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", fset.Position(c.Pos()), pat, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Fatalf("typecheck: %v", err) },
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}

	diags, err := lint.RunAnalyzers(fset, files, pkg, info, []*lint.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	if !useWants {
		for _, d := range diags {
			t.Errorf("unexpected diagnostic at %s: %s", shortPos(d.Pos), d.Message)
		}
		return
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", shortPos(d.Pos), d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

func shortPos(p token.Position) string {
	return strings.TrimPrefix(p.String(), filepath.Dir(p.Filename)+string(filepath.Separator))
}
