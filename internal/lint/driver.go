package lint

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"fafnet/internal/lint/sarif"
)

// This file implements fafvet's standalone driver mode. Invoked on package
// patterns instead of a .cfg file, the binary re-invokes the go command
// against itself —
//
//	go vet -vettool=<self> -emit=machine <patterns>
//
// — so the go command keeps doing what it is good at (loading packages,
// export data, the facts cache), while this process aggregates the
// machine-readable diagnostics across packages, applies the committed
// baseline, and emits text, JSON or SARIF. Exit codes: 0 clean, 2 findings
// (or stale baseline entries), 1 operational failure.

// DriverOptions configure the standalone driver.
type DriverOptions struct {
	Format   string // "text", "json" or "sarif"
	Output   string // output file; empty means stdout
	Baseline string // baseline JSON path; empty disables baselining
}

// Baseline is the committed waiver file: findings listed here are known and
// accepted. Entries match on (analyzer, file, message) — line numbers drift
// with every edit, so they are deliberately not part of the key. An entry
// that matches nothing is stale and becomes a finding itself, so the file
// can only shrink ratchet-style.
type Baseline struct {
	Comment  string          `json:"comment,omitempty"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry identifies one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Driver runs the standalone aggregation mode and returns the process exit
// code. disabled lists analyzers to pass through as -name=false.
func Driver(analyzers []*Analyzer, disabled []string, opts DriverOptions, patterns []string) int {
	switch opts.Format {
	case "", "text", "json", "sarif", "dot":
	default:
		fmt.Fprintf(os.Stderr, "fafvet: unknown -format %q (want text, json, sarif or dot)\n", opts.Format)
		return 1
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fafvet: %v\n", err)
		return 1
	}
	args := []string{"vet", "-vettool=" + exe, "-emit=machine"}
	for _, name := range disabled {
		args = append(args, "-"+name+"=false")
	}
	if opts.Format == "dot" {
		// A registered analyzer flag, not an environment variable, so the go
		// command's action cache distinguishes edge-emitting runs.
		args = append(args, "-lockgraph")
	}
	args = append(args, patterns...)
	out, vetErr := exec.Command("go", args...).CombinedOutput()

	diags, noise := parseMachineOutput(out)
	if vetErr != nil && len(diags) == 0 && len(noise) > 0 {
		// go vet failed without producing a single diagnostic: an operational
		// error (bad pattern, compile failure), not findings.
		fmt.Fprintf(os.Stderr, "fafvet: go vet failed:\n%s", strings.Join(noise, "\n"))
		fmt.Fprintln(os.Stderr)
		return 1
	}
	for _, line := range noise {
		fmt.Fprintln(os.Stderr, line)
	}

	relativizeFiles(diags)
	diags = dedupe(diags)
	sortMachine(diags)

	var edges [][2]string
	if opts.Format == "dot" {
		// Edge lines are data, not findings: pull them out before the
		// baseline sees them.
		diags, edges = splitEdges(diags)
	}

	if opts.Baseline != "" {
		var err error
		diags, err = applyBaseline(diags, opts.Baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fafvet: %v\n", err)
			return 1
		}
	}

	var rendered []byte
	switch opts.Format {
	case "json":
		rendered, err = json.MarshalIndent(diags, "", "  ")
		rendered = append(rendered, '\n')
	case "sarif":
		rendered, err = renderSARIF(analyzers, diags)
	case "dot":
		rendered = renderDot(edges)
		// Findings still gate the exit code; in dot mode they go to stderr
		// so the graph on stdout stays valid Graphviz.
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
		}
	default:
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Column, d.Message, d.Analyzer)
		}
		rendered = []byte(b.String())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fafvet: %v\n", err)
		return 1
	}
	if opts.Output != "" {
		if err := os.WriteFile(opts.Output, rendered, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "fafvet: %v\n", err)
			return 1
		}
	} else {
		os.Stdout.Write(rendered)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// splitEdges separates lockorder's -lockgraph edge diagnostics from real
// findings, deduplicating edges by (from, to) — a package and its test
// variant re-report the same edge at the same position.
func splitEdges(diags []MachineDiag) ([]MachineDiag, [][2]string) {
	var rest []MachineDiag
	seen := make(map[[2]string]bool)
	var edges [][2]string
	for _, d := range diags {
		msg, ok := strings.CutPrefix(d.Message, LockGraphEdgePrefix)
		if !ok || d.Analyzer != "lockorder" {
			rest = append(rest, d)
			continue
		}
		from, to, ok := strings.Cut(msg, " -> ")
		if !ok {
			rest = append(rest, d)
			continue
		}
		e := [2]string{from, to}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return rest, edges
}

// renderDot renders the lock graph as a Graphviz digraph. Edges on a cycle
// (the reverse direction is also reachable) are drawn red and bold, so the
// deadlock candidates stand out in the figure.
func renderDot(edges [][2]string) []byte {
	succ := make(map[string][]string)
	for _, e := range edges {
		succ[e[0]] = append(succ[e[0]], e[1])
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{from: true}
		queue := []string{from}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n == to {
				return true
			}
			for _, next := range succ[n] {
				if !seen[next] {
					seen[next] = true
					queue = append(queue, next)
				}
			}
		}
		return false
	}
	var b strings.Builder
	b.WriteString("digraph lockgraph {\n")
	b.WriteString("\trankdir=LR;\n")
	b.WriteString("\tnode [shape=box, fontname=\"monospace\"];\n")
	for _, e := range edges {
		if reaches(e[1], e[0]) {
			fmt.Fprintf(&b, "\t%q -> %q [color=red, penwidth=2.0];\n", e[0], e[1])
		} else {
			fmt.Fprintf(&b, "\t%q -> %q;\n", e[0], e[1])
		}
	}
	b.WriteString("}\n")
	return []byte(b.String())
}

// parseMachineOutput splits go vet output into machine diagnostics and the
// remaining human-readable noise (package headers are dropped).
func parseMachineOutput(out []byte) (diags []MachineDiag, noise []string) {
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, MachinePrefix):
			var d MachineDiag
			if err := json.Unmarshal([]byte(line[len(MachinePrefix):]), &d); err == nil {
				diags = append(diags, d)
				continue
			}
			noise = append(noise, line)
		case strings.HasPrefix(line, "#"), strings.TrimSpace(line) == "":
			// "# fafnet/internal/..." package headers carry no information
			// the diagnostics don't.
		case strings.HasPrefix(line, "exit status"):
		default:
			noise = append(noise, line)
		}
	}
	return diags, noise
}

// relativizeFiles rewrites absolute file names relative to the working
// directory, with forward slashes, so output and baselines are stable
// across checkouts.
func relativizeFiles(diags []MachineDiag) {
	cwd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
}

// dedupe removes identical diagnostics: a package and its test variant are
// vetted separately and re-report the same positions.
func dedupe(diags []MachineDiag) []MachineDiag {
	seen := make(map[MachineDiag]bool, len(diags))
	var out []MachineDiag
	for _, d := range diags {
		if seen[d] {
			continue
		}
		seen[d] = true
		out = append(out, d)
	}
	return out
}

// sortMachine orders diagnostics by file, line, column, analyzer, message.
func sortMachine(diags []MachineDiag) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// applyBaseline drops diagnostics matching baseline entries and converts
// stale entries (matching nothing) into findings anchored at the baseline
// file, so a waiver outliving its finding fails the gate until deleted.
func applyBaseline(diags []MachineDiag, path string) ([]MachineDiag, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading baseline: %w", err)
	}
	var bl Baseline
	if err := json.Unmarshal(data, &bl); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	used := make([]bool, len(bl.Findings))
	var out []MachineDiag
	for _, d := range diags {
		matched := false
		for i, e := range bl.Findings {
			if e.Analyzer == d.Analyzer && e.File == d.File && e.Message == d.Message {
				used[i] = true
				matched = true
			}
		}
		if !matched {
			out = append(out, d)
		}
	}
	base := filepath.ToSlash(path)
	for i, e := range bl.Findings {
		if !used[i] {
			out = append(out, MachineDiag{
				Analyzer: "baseline",
				File:     base,
				Line:     1,
				Message: fmt.Sprintf("stale baseline entry: no %s finding %q in %s; delete the entry",
					e.Analyzer, e.Message, e.File),
			})
		}
	}
	sortMachine(out)
	return out, nil
}

// renderSARIF converts diagnostics to a SARIF 2.1.0 log. Every registered
// analyzer appears as a rule (plus "lint" for suppression hygiene and
// "baseline" for stale waivers) so a clean run still documents what was
// checked.
func renderSARIF(analyzers []*Analyzer, diags []MachineDiag) ([]byte, error) {
	ruleDocs := map[string]string{
		"lint":     "unused //lint:allow suppressions",
		"baseline": "stale baseline entries",
	}
	for _, a := range analyzers {
		ruleDocs[a.Name] = firstLine(a.Doc)
	}
	findings := make([]sarif.Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, sarif.Finding{
			Analyzer: d.Analyzer,
			File:     d.File,
			Line:     d.Line,
			Column:   d.Column,
			Message:  d.Message,
		})
	}
	log := sarif.Build("fafvet", "https://github.com/fafnet/fafnet", ruleDocs, findings)
	return log.Encode()
}
