package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/heldset"
)

// scan computes fn's direct violations and same-package call edges, once.
func (c *checker) scan(fn *types.Func) {
	if c.scanned[fn] {
		return
	}
	c.scanned[fn] = true
	fd, ok := c.decls[fn]
	if !ok {
		return
	}
	s := &scanner{checker: c, fn: fn}
	s.collectCallIdents(fd.Body)
	ast.Inspect(fd.Body, s.node)
	c.viol[fn] = s.viols
	c.calls[fn] = s.callees
}

// scanner walks one function body applying the hot-path rules.
type scanner struct {
	*checker
	fn      *types.Func
	viols   []violation
	callees []calleeRef
	// callIdents marks identifiers that are the operator of a call, so the
	// bound-method-value rule does not fire on ordinary call syntax.
	callIdents map[*ast.Ident]bool
}

func (s *scanner) add(pos token.Pos, format string, args ...any) {
	s.viols = append(s.viols, violation{pos, fmt.Sprintf(format, args...)})
}

// collectCallIdents pre-marks the identifiers appearing as call operators.
func (s *scanner) collectCallIdents(body *ast.BlockStmt) {
	s.callIdents = make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			s.callIdents[fun] = true
		case *ast.SelectorExpr:
			s.callIdents[fun.Sel] = true
		}
		return true
	})
}

// node is the per-node rule dispatcher.
func (s *scanner) node(n ast.Node) bool {
	info := s.pass.TypesInfo
	switch n := n.(type) {
	case *ast.CallExpr:
		return s.call(n)
	case *ast.FuncLit:
		s.add(n.Pos(), "hot path: func literal allocates a closure; hoist it or name the function")
		return false
	case *ast.GoStmt:
		s.add(n.Pos(), "hot path: go statement allocates a goroutine and leaves the fast path")
		return false
	case *ast.DeferStmt:
		s.add(n.Pos(), "hot path: defer may allocate its record and runs off the fast path; restructure without defer")
		return true
	case *ast.CompositeLit:
		tv, ok := info.Types[n]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			s.add(n.Pos(), "hot path: slice literal allocates; hoist it out of the annotated region")
		case *types.Map:
			s.add(n.Pos(), "hot path: map literal allocates; hoist it out of the annotated region")
		}
		return true
	case *ast.UnaryExpr:
		switch n.Op {
		case token.ARROW:
			s.add(n.Pos(), "hot path: channel receive may block")
		case token.AND:
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				s.add(n.Pos(), "hot path: address of a composite literal escapes to the heap; reuse a preallocated value")
			}
		}
		return true
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil && isStringType(tv.Type) && !isUntypedConst(info.Types[n]) {
				s.add(n.Pos(), "hot path: string concatenation allocates")
			}
		}
		return true
	case *ast.SendStmt:
		s.add(n.Pos(), "hot path: channel send may block")
		return true
	case *ast.SelectStmt:
		s.add(n.Pos(), "hot path: select may block")
		return true
	case *ast.RangeStmt:
		tv, ok := info.Types[n.X]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Chan:
			s.add(n.Pos(), "hot path: range over a channel may block")
		case *types.Map:
			if !s.mapRangeOrderSafe(n) {
				s.add(n.Pos(), "hot path: map iteration order escapes (only per-key index assignments and deletes are order-safe); iterate a sorted slice instead")
			}
		}
		return true
	case *ast.SelectorExpr:
		// A bound method value x.M (not called, not a method expression)
		// allocates a closure capturing x. Plain function values point at
		// static data and are exempt — calling them later trips the
		// dynamic-call rule instead.
		if s.callIdents[n.Sel] {
			return true
		}
		if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
			s.add(n.Pos(), "hot path: the bound method value %s allocates a closure; call the method directly", heldset.ExprDisplay(n))
		}
		return true
	}
	return true
}

// call applies the call-site rules and records same-package edges.
// Returning true keeps descending into arguments, where the other rules
// apply independently.
func (s *scanner) call(call *ast.CallExpr) bool {
	info := s.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		s.conversion(call, tv.Type)
		return true
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.add(call.Pos(), "hot path: make allocates; hoist the allocation out of the annotated region")
			case "new":
				s.add(call.Pos(), "hot path: new allocates; hoist the allocation out of the annotated region")
			case "append":
				s.add(call.Pos(), "hot path: append may grow its backing array; preallocate outside the hot path")
			}
			return true
		}
	}

	if _, ok := fun.(*ast.FuncLit); ok {
		return true // the FuncLit rule already fires on the literal itself
	}

	fn := calleeFunc(info, call)
	if fn == nil {
		s.add(call.Pos(), "hot path: dynamic call through a function value cannot be verified; call a named function or an annotated interface method")
		return true
	}

	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if _, ok := sig.Recv().Type().Underlying().(*types.Interface); ok {
			if !s.annotIface[fn] {
				s.add(call.Pos(), "hot path: call through interface method %s is not covered by a %s annotation on the interface; annotate the method or devirtualize the call", funcDisplay(fn), Marker)
				return true
			}
			s.boxedArgs(call, sig)
			return true
		}
	}

	pkg := fn.Pkg()
	if pkg == nil {
		return true
	}
	path := pkg.Path()
	switch {
	case pkg == s.pass.Pkg:
		if _, ok := s.decls[fn]; ok {
			s.callees = append(s.callees, calleeRef{call.Pos(), fn})
		} else {
			s.add(call.Pos(), "hot path: %s has no analyzable body in this package; it cannot be verified", funcDisplay(fn))
		}
		s.boxedArgs(call, sig)
	case path == lint.ModulePath || strings.HasPrefix(path, lint.ModulePath+"/"):
		key := fn.Name()
		if recv := heldset.ReceiverNamed(fn); recv != "" {
			key = recv + "." + fn.Name()
		}
		var cf cleanFact
		if s.pass.ImportFact(path, key, &cf) && cf.Clean {
			s.boxedArgs(call, sig)
			return true
		}
		s.add(call.Pos(), "hot path: call to %s.%s is not proven hot-path-safe (no hotpath fact exported by %s); keep the hot path inside proven callees or move this call off it", shortPkg(path), funcDisplay(fn), path)
	default:
		s.stdlibCall(call, fn, sig, path)
	}
	return true
}

// stdlibCall classifies calls outside the module: a small allowlist of
// provably pure, non-allocating functions; named bans with precise
// messages; everything else unverifiable.
func (s *scanner) stdlibCall(call *ast.CallExpr, fn *types.Func, sig *types.Signature, path string) {
	name := fn.Name()
	switch path {
	case "math", "math/bits", "sync/atomic":
		s.boxedArgs(call, sig)
		return
	case "sort":
		if name == "SearchFloat64s" || name == "SearchInts" {
			return
		}
	case "time":
		switch name {
		case "Sleep":
			s.add(call.Pos(), "hot path: time.Sleep blocks")
			return
		case "Now", "Since", "Until":
			s.add(call.Pos(), "hot path: time.%s reads the wall clock; hot paths must be deterministic", name)
			return
		}
	case "sync":
		switch name {
		case "Lock", "RLock", "Wait":
			s.add(call.Pos(), "hot path: sync.%s.%s may block; hot paths must be lock-free", heldset.ReceiverNamed(fn), name)
			return
		}
	case "fmt", "reflect":
		s.add(call.Pos(), "hot path: call into %s allocates; format off the hot path", path)
		return
	}
	switch path {
	case "os", "io", "bufio", "net":
		s.add(call.Pos(), "hot path: call to %s.%s performs I/O", path, funcDisplay(fn))
		return
	}
	s.add(call.Pos(), "hot path: call to %s.%s is outside the hot-path allowlist (math, math/bits, sync/atomic, sort searches) and cannot be verified", path, funcDisplay(fn))
}

// conversion applies the boxing and string-conversion rules to T(x).
func (s *scanner) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	info := s.pass.TypesInfo
	arg := call.Args[0]
	atv, ok := info.Types[arg]
	if !ok || atv.Type == nil || atv.IsNil() {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); ok {
		if _, argIsIface := atv.Type.Underlying().(*types.Interface); !argIsIface {
			s.add(call.Pos(), "hot path: conversion of %s to interface %s allocates (boxing)", types.TypeString(atv.Type, types.RelativeTo(s.pass.Pkg)), types.TypeString(target, types.RelativeTo(s.pass.Pkg)))
		}
		return
	}
	tIsStr := isStringType(target)
	aIsStr := isStringType(atv.Type)
	switch {
	case tIsStr && !aIsStr && !isUntypedConst(atv):
		s.add(call.Pos(), "hot path: conversion to string allocates")
	case !tIsStr && aIsStr && isByteOrRuneSlice(target):
		s.add(call.Pos(), "hot path: conversion of string to %s allocates", types.TypeString(target, types.RelativeTo(s.pass.Pkg)))
	}
}

// boxedArgs flags concrete arguments passed to interface parameters and
// non-spread arguments packed into a variadic slice.
func (s *scanner) boxedArgs(call *ast.CallExpr, sig *types.Signature) {
	if sig == nil {
		return
	}
	info := s.pass.TypesInfo
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// A method expression T.M(recv, ...) shifts the arguments by the
		// receiver; skip rather than misalign.
		if s2, ok := info.Selections[sel]; ok && s2.Kind() == types.MethodExpr {
			return
		}
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n--
		if call.Ellipsis == token.NoPos && len(call.Args) > n {
			s.add(call.Pos(), "hot path: variadic call packs %d argument(s) into a slice; pass a preallocated slice with ... or use a fixed-arity callee", len(call.Args)-n)
		}
	}
	for i, arg := range call.Args {
		if i >= n {
			break
		}
		pt := params.At(i).Type()
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() {
			continue
		}
		if _, argIsIface := atv.Type.Underlying().(*types.Interface); !argIsIface {
			s.add(arg.Pos(), "hot path: passing %s to the interface parameter %s of %s allocates (boxing)", types.TypeString(atv.Type, types.RelativeTo(s.pass.Pkg)), params.At(i).Name(), funcDisplayFromCall(info, call))
		}
	}
}

// mapRangeOrderSafe reports whether a map range body observes nothing of
// the iteration order: every statement is either an assignment whose
// left-hand sides are all index expressions (or blank), or a delete call.
func (s *scanner) mapRangeOrderSafe(rs *ast.RangeStmt) bool {
	info := s.pass.TypesInfo
	for _, st := range rs.Body.List {
		switch st := st.(type) {
		case *ast.AssignStmt:
			if st.Tok != token.ASSIGN {
				return false
			}
			for _, lhs := range st.Lhs {
				switch l := ast.Unparen(lhs).(type) {
				case *ast.IndexExpr:
				case *ast.Ident:
					if l.Name != "_" {
						return false
					}
				default:
					return false
				}
			}
		case *ast.ExprStmt:
			call, ok := st.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok {
				return false
			}
			if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "delete" {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// calleeFunc resolves a call to the invoked *types.Func, nil for dynamic
// calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// funcDisplayFromCall names the callee for the boxing diagnostic.
func funcDisplayFromCall(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return funcDisplay(fn)
	}
	return "the callee"
}

// shortPkg abbreviates a module package path the way lockorder does.
func shortPkg(path string) string {
	for _, prefix := range []string{lint.ModulePath + "/internal/", lint.ModulePath + "/cmd/", lint.ModulePath + "/"} {
		if rest, ok := strings.CutPrefix(path, prefix); ok {
			return strings.ReplaceAll(rest, "/", ".")
		}
	}
	return path
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isUntypedConst(tv types.TypeAndValue) bool {
	return tv.Value != nil
}
