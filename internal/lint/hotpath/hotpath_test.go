package hotpath_test

import (
	"testing"

	"fafnet/internal/lint/hotpath"
	"fafnet/internal/lint/linttest"
)

// TestHotpath drives every rule against the want-annotated fixture.
func TestHotpath(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "testdata/h", "fafnet/internal/hfake")
}

// TestWaiver shows a justified //lint:allow hotpath suppression silencing
// a finding (and being counted as used).
func TestWaiver(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "testdata/waive", "fafnet/internal/waivefake")
}

// TestOutOfScopeSilent shows the same sources produce nothing outside the
// module: the analyzer is scoped to fafnet packages.
func TestOutOfScopeSilent(t *testing.T) {
	linttest.RunExpectNone(t, hotpath.Analyzer, "testdata/h", "example.com/outside")
}
