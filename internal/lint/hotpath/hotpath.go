// Package hotpath implements the hot-path purity analyzer: a function
// annotated
//
//	//fafvet:hotpath
//
// in its doc comment — or an interface method so annotated, which makes
// every implementation a checked root and every dynamic call through it
// trusted — must be provably free of heap allocation, blocking and
// nondeterminism, transitively through same-package callees and, via
// exported facts, through exported callees in other module packages.
//
// The admission fast path (traffic envelope evaluation, the stage-0 probe,
// the MAC and mux scans, the metric counters) is evaluated millions of
// times per CAC decision; PR 3 bought its ~3x speedup by hoisting exactly
// the operations this analyzer bans, and a handful of AllocsPerRun tests
// were the only thing keeping them out. hotpath turns that property into a
// ratcheted invariant: the annotation documents the contract at the
// declaration, and the checker walks the closure.
//
// Banned in an annotated closure:
//
//   - heap allocation: make, new, append, slice/map composite literals,
//     &composite (address of a literal escapes conservatively), closure
//     creation (func literals, function/method values), string
//     concatenation and string<->[]byte/[]rune conversions, variadic
//     argument packing, interface boxing (explicit conversions and
//     concrete arguments to interface parameters), go statements, defer,
//     and any call into fmt or reflect;
//   - blocking: mutex Lock/RLock, WaitGroup/Cond Wait, channel send,
//     receive, select and range-over-channel, time.Sleep, and calls into
//     I/O packages (os, io, bufio, net);
//   - nondeterminism: time.Now/Since/Until, and map iteration whose order
//     can escape — a map range is order-safe only when its body is nothing
//     but per-key index assignments and deletes.
//
// Map and slice element writes are allowed (growth on a pre-sized map is
// amortized away and is part of the memoization design); so are all of
// math, math/bits and sync/atomic, and sort.SearchFloat64s/SearchInts
// (whose callback the compiler inlines without allocating). Calls that
// cannot be verified — dynamic calls through unannotated function values
// or interface methods, out-of-module callees off the allowlist, module
// callees with no exported hotpath fact — are findings too, each reported
// with the call path from the annotated root. Waive only with
// //lint:allow hotpath <reason>; waivers ratchet like every analyzer.
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/heldset"
)

// Marker is the annotation comment that turns a function or interface
// method into a hot-path root.
const Marker = "//fafvet:hotpath"

// Analyzer proves annotated hot paths allocation-free, non-blocking and
// deterministic.
var Analyzer = &lint.Analyzer{
	Name: "hotpath",
	Doc: `prove //fafvet:hotpath functions allocation-free, non-blocking and deterministic

A //fafvet:hotpath doc comment on a function, or on an interface method
(checking every implementation and trusting dynamic calls through it),
walks the transitive closure over same-package callees and exported
cross-package facts, banning heap allocation (make/new/append, slice and
map literals, closures, boxing, string building, variadic packing, fmt and
reflect), blocking (mutexes, channels, select, time.Sleep, I/O) and
nondeterminism (wall-clock reads, map ranges whose order escapes).
Unverifiable calls are findings, reported with the call path from the
annotated root. Exported functions proven clean are published as facts for
downstream packages.`,
	Run:          run,
	ExportsFacts: true,
	FactTypes:    []string{"cleanFact", "ifaceFact"},
}

// cleanFact marks one exported function or method as transitively
// hot-path-safe; its absence means "not proven".
type cleanFact struct {
	Clean bool `json:"clean"`
}

// ifaceFact (exported under the fixed key "ifaces") lists the package's
// annotated interface methods as "Iface.Method" strings, so downstream
// implementations are checked and downstream dynamic calls are trusted.
type ifaceFact []string

// ifacesKey is the fact key carrying ifaceFact. It cannot collide with a
// function fact: those keys start with an exported identifier.
const ifacesKey = "ifaces"

func run(pass *lint.Pass) error {
	p := pass.Pkg.Path()
	if p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return nil
	}
	c := &checker{
		pass:       pass,
		decls:      make(map[*types.Func]*ast.FuncDecl),
		annotIface: make(map[*types.Func]bool),
		viol:       make(map[*types.Func][]violation),
		calls:      make(map[*types.Func][]calleeRef),
		scanned:    make(map[*types.Func]bool),
		walked:     make(map[*types.Func]bool),
		cleanMemo:  make(map[*types.Func]cleanState),
	}
	c.collect()
	c.importIfaces()
	c.addImplRoots()
	c.reportRoots()
	c.exportFacts()
	return nil
}

// violation is one banned operation found in a function body, before the
// call-path suffix is attached.
type violation struct {
	pos token.Pos
	msg string
}

// calleeRef is one same-package call edge, in source order.
type calleeRef struct {
	pos token.Pos
	fn  *types.Func
}

type checker struct {
	pass  *lint.Pass
	decls map[*types.Func]*ast.FuncDecl

	// roots are the annotated functions plus implementations of annotated
	// interface methods, in source order.
	roots []*types.Func
	// annotIface holds annotated interface method objects, local and
	// imported; dynamic calls through them are trusted.
	annotIface map[*types.Func]bool
	// localIfaces records local annotations as (interface, method) pairs
	// for implementation matching and fact export.
	localIfaces []ifaceMethod
	// importedIfaces records annotated interface methods resolved from
	// dependency facts.
	importedIfaces []ifaceMethod

	viol    map[*types.Func][]violation
	calls   map[*types.Func][]calleeRef
	scanned map[*types.Func]bool
	walked  map[*types.Func]bool

	cleanMemo map[*types.Func]cleanState
}

// ifaceMethod is one annotated interface method: the declaring interface
// and the method object.
type ifaceMethod struct {
	ifaceName string
	iface     *types.Interface
	method    *types.Func
}

// collect gathers function declarations, annotated roots and annotated
// interface methods from the package's non-test files, and validates
// //fafvet: directives (unknown directives and markers attached to nothing
// are findings — a typo must not silently disable the check).
func (c *checker) collect() {
	info := c.pass.TypesInfo
	consumed := make(map[token.Pos]bool)
	for _, f := range c.pass.Files {
		if strings.HasSuffix(c.pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				fn, ok := info.Defs[d.Name].(*types.Func)
				if !ok {
					continue
				}
				c.decls[fn] = d
				if pos, ok := markerIn(d.Doc); ok {
					consumed[pos] = true
					c.roots = append(c.roots, fn)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					it, ok := ts.Type.(*ast.InterfaceType)
					if !ok {
						continue
					}
					c.collectIface(ts, it, consumed)
				}
			}
		}
	}
	// Directive hygiene: every //fafvet: comment must be a marker attached
	// to a function or interface-method declaration.
	for _, f := range c.pass.Files {
		if strings.HasSuffix(c.pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, cg := range f.Comments {
			for _, cmt := range cg.List {
				if !strings.HasPrefix(cmt.Text, "//fafvet:") {
					continue
				}
				if !strings.HasPrefix(cmt.Text, Marker) {
					c.pass.Reportf(cmt.Pos(), "unknown fafvet directive %q: only %s is recognized", strings.TrimSpace(cmt.Text), Marker)
					continue
				}
				if !consumed[cmt.Pos()] {
					c.pass.Reportf(cmt.Pos(), "misplaced %s: the marker must sit in the doc comment of a function declaration or an interface method", Marker)
				}
			}
		}
	}
}

// collectIface records annotated methods of one interface declaration.
func (c *checker) collectIface(ts *ast.TypeSpec, it *ast.InterfaceType, consumed map[token.Pos]bool) {
	info := c.pass.TypesInfo
	tn, _ := info.Defs[ts.Name].(*types.TypeName)
	for _, field := range it.Methods.List {
		pos, ok := markerIn(field.Doc)
		if !ok {
			if pos, ok = markerIn(field.Comment); !ok {
				continue
			}
		}
		consumed[pos] = true
		if len(field.Names) == 0 {
			c.pass.Reportf(field.Pos(), "%s on an embedded interface is not supported; annotate the method in its declaring interface", Marker)
			continue
		}
		for _, name := range field.Names {
			fn, ok := info.Defs[name].(*types.Func)
			if !ok || tn == nil {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			c.annotIface[fn] = true
			c.localIfaces = append(c.localIfaces, ifaceMethod{tn.Name(), iface, fn})
		}
	}
}

// markerIn reports the position of the //fafvet:hotpath marker in a
// comment group.
func markerIn(groups ...*ast.CommentGroup) (token.Pos, bool) {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, cmt := range g.List {
			if strings.HasPrefix(cmt.Text, Marker) {
				return cmt.Pos(), true
			}
		}
	}
	return token.NoPos, false
}

// importIfaces resolves annotated interface methods from every module
// dependency's exported fact, so implementations and dynamic calls in this
// package are handled like local annotations.
func (c *checker) importIfaces() {
	for _, imp := range c.pass.Pkg.Imports() {
		path := imp.Path()
		if path != lint.ModulePath && !strings.HasPrefix(path, lint.ModulePath+"/") {
			continue
		}
		var list ifaceFact
		if !c.pass.ImportFact(path, ifacesKey, &list) {
			continue
		}
		for _, entry := range list {
			ifaceName, methodName, ok := strings.Cut(entry, ".")
			if !ok {
				continue
			}
			tn, ok := imp.Scope().Lookup(ifaceName).(*types.TypeName)
			if !ok {
				continue
			}
			iface, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				if m := iface.Method(i); m.Name() == methodName {
					c.annotIface[m] = true
					c.importedIfaces = append(c.importedIfaces, ifaceMethod{ifaceName, iface, m})
				}
			}
		}
	}
}

// addImplRoots promotes every method of this package that implements an
// annotated interface method (local or imported) to a checked root: a
// value of the concrete type can sit behind the trusted interface, so the
// implementation must satisfy the same contract.
func (c *checker) addImplRoots() {
	all := append(append([]ifaceMethod(nil), c.localIfaces...), c.importedIfaces...)
	if len(all) == 0 {
		return
	}
	inRoots := make(map[*types.Func]bool, len(c.roots))
	for _, fn := range c.roots {
		inRoots[fn] = true
	}
	for fn := range c.decls {
		sig := fn.Type().(*types.Signature)
		if sig.Recv() == nil || inRoots[fn] {
			continue
		}
		rt := sig.Recv().Type()
		for _, im := range all {
			if fn.Name() != im.method.Name() {
				continue
			}
			if types.Implements(rt, im.iface) || types.Implements(types.NewPointer(rt), im.iface) {
				c.roots = append(c.roots, fn)
				inRoots[fn] = true
				break
			}
		}
	}
}

// reportRoots walks every root's transitive same-package closure in source
// order and reports each function's violations once, suffixed with the
// call path from the first root that reached it.
func (c *checker) reportRoots() {
	sort.Slice(c.roots, func(i, j int) bool {
		di, dj := c.decls[c.roots[i]], c.decls[c.roots[j]]
		return di.Pos() < dj.Pos()
	})
	for _, root := range c.roots {
		c.visit(root, []string{funcDisplay(root)})
	}
}

func (c *checker) visit(fn *types.Func, path []string) {
	if c.walked[fn] {
		return
	}
	c.walked[fn] = true
	c.scan(fn)
	suffix := ""
	if len(path) > 1 {
		suffix = fmt.Sprintf(" (call path: %s)", strings.Join(path, " -> "))
	}
	for _, v := range c.viol[fn] {
		c.pass.Report(v.pos, v.msg+suffix)
	}
	for _, cr := range c.calls[fn] {
		c.visit(cr.fn, append(path, funcDisplay(cr.fn)))
	}
}

// funcDisplay names a function for diagnostics: Recv.Name for methods.
func funcDisplay(fn *types.Func) string {
	if recv := heldset.ReceiverNamed(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// cleanState memoizes the transitive-cleanliness computation used for fact
// export.
type cleanState int

const (
	cleanUnknown cleanState = iota
	cleanVisiting
	cleanYes
	cleanNo
)

// isClean reports whether fn's transitive closure is violation-free.
// Recursion contributes nothing new (a cycle member is clean iff the rest
// of its closure is).
func (c *checker) isClean(fn *types.Func) bool {
	switch c.cleanMemo[fn] {
	case cleanYes, cleanVisiting:
		return true
	case cleanNo:
		return false
	}
	c.cleanMemo[fn] = cleanVisiting
	c.scan(fn)
	ok := len(c.viol[fn]) == 0
	if ok {
		for _, cr := range c.calls[fn] {
			if !c.isClean(cr.fn) {
				ok = false
				break
			}
		}
	}
	if ok {
		c.cleanMemo[fn] = cleanYes
	} else {
		c.cleanMemo[fn] = cleanNo
	}
	return ok
}

// exportFacts publishes cleanFacts for every exported function or method
// (of an exported type) proven transitively clean, plus the package's
// annotated interface methods — exported interfaces only, since nothing
// else is implementable downstream.
func (c *checker) exportFacts() {
	var fns []*types.Func
	for fn := range c.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return c.decls[fns[i]].Pos() < c.decls[fns[j]].Pos() })
	for _, fn := range fns {
		if !fn.Exported() {
			continue
		}
		key := fn.Name()
		if recv := heldset.ReceiverNamed(fn); recv != "" {
			if !token.IsExported(recv) {
				continue
			}
			key = recv + "." + fn.Name()
		}
		if c.isClean(fn) {
			_ = c.pass.ExportFact(key, cleanFact{Clean: true})
		}
	}

	var list ifaceFact
	for _, im := range c.localIfaces {
		if !token.IsExported(im.ifaceName) || !im.method.Exported() {
			continue
		}
		list = append(list, im.ifaceName+"."+im.method.Name())
	}
	if len(list) > 0 {
		sort.Strings(list)
		_ = c.pass.ExportFact(ifacesKey, list)
	}
}
