// Package h exercises every hotpath rule.
package h

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"
)

// Evaluator is the pluggable kernel; Value is part of the hot path.
type Evaluator interface {
	// Value returns the envelope value at t.
	//
	//fafvet:hotpath
	Value(t float64) float64
	// Other is deliberately not annotated.
	Other(t float64) float64
}

// Lin is a clean implementation: checked as a root, silently.
type Lin struct{ a float64 }

// Value is allocation-free.
func (l Lin) Value(t float64) float64 { return math.Floor(l.a * t) }

// Other is unconstrained.
func (l Lin) Other(t float64) float64 { return t }

// Bad implements Evaluator with an allocating Value.
type Bad struct{}

// Value formats on the hot path.
func (Bad) Value(t float64) float64 {
	return float64(len(fmt.Sprint(t))) // want `call into fmt allocates`
}

// Other completes the interface so Bad actually implements it.
func (Bad) Other(t float64) float64 { return t }

// UseIface calls through both interface methods.
//
//fafvet:hotpath
func UseIface(e Evaluator, t float64) float64 {
	_ = e.Other(t)    // want `interface method Evaluator.Other is not covered by a //fafvet:hotpath annotation`
	return e.Value(t) // trusted: the method is annotated
}

// Allocs collects the direct allocation rules.
//
//fafvet:hotpath
func Allocs(xs []float64) float64 {
	buf := make([]float64, 4) // want `make allocates`
	p := new(int)             // want `new allocates`
	xs = append(xs, 1)        // want `append may grow its backing array`
	ys := []float64{1, 2}     // want `slice literal allocates`
	m := map[int]int{}        // want `map literal allocates`
	q := &pair{3, 4}          // want `address of a composite literal escapes`
	v := pair{1, 2}           // a value struct literal stays on the stack
	_, _, _ = buf, p, m
	return xs[0] + ys[0] + q.a + v.b
}

type pair struct{ a, b float64 }

// Strs collects the string rules.
//
//fafvet:hotpath
func Strs(a, b string, bs []byte) string {
	_ = string(bs) // want `conversion to string allocates`
	_ = []byte(a)  // want `conversion of string to \[\]byte allocates`
	return a + b   // want `string concatenation allocates`
}

// Conv boxes explicitly.
//
//fafvet:hotpath
func Conv(x int) any {
	return any(x) // want `conversion of int to interface .* allocates \(boxing\)`
}

// sink has an interface parameter.
func sink(v any) { _ = v }

// vsum is variadic.
func vsum(vs ...float64) float64 {
	s := 0.0
	for i := range vs {
		s += vs[i]
	}
	return s
}

// Calls collects the call-site allocation rules.
//
//fafvet:hotpath
func Calls(x int) float64 {
	sink(x)           // want `interface parameter v of sink allocates \(boxing\)`
	return vsum(1, 2) // want `variadic call packs 2 argument\(s\) into a slice`
}

// Dyn calls through a function value.
//
//fafvet:hotpath
func Dyn(f func() float64) float64 {
	return f() // want `dynamic call through a function value`
}

// Spawns collects goroutine, defer and closure rules.
//
//fafvet:hotpath
func Spawns() {
	go cleanHelper()    // want `go statement allocates a goroutine`
	defer cleanHelper() // want `defer may allocate its record`
	f := func() {}      // want `func literal allocates a closure`
	_ = f
}

// MethodVal binds a method.
//
//fafvet:hotpath
func MethodVal(l Lin) func(float64) float64 {
	return l.Value // want `bound method value l.Value allocates a closure`
}

// Chans collects the channel rules.
//
//fafvet:hotpath
func Chans(ch chan int) {
	ch <- 1  // want `channel send may block`
	<-ch     // want `channel receive may block`
	select { // want `select may block`
	case v := <-ch: // want `channel receive may block`
		_ = v
	}
	for range ch { // want `range over a channel may block`
	}
}

var mu sync.Mutex

// Locks trips the blocking rules.
//
//fafvet:hotpath
func Locks() {
	mu.Lock()     // want `sync.Mutex.Lock may block`
	mu.Unlock()   // want `outside the hot-path allowlist`
	time.Sleep(1) // want `time.Sleep blocks`
}

// Clock reads the wall clock through two hops; the finding carries the
// call path from the root.
//
//fafvet:hotpath
func Clock() int64 {
	return hop1()
}

func hop1() int64 { return hop2() }

func hop2() int64 {
	_ = time.Now() // want `time.Now reads the wall clock.*call path: Clock -> hop1 -> hop2`
	return 0
}

// CopyMaps is order-safe map iteration: transfers and deletes only.
//
//fafvet:hotpath
func CopyMaps(dst, src map[int]float64) {
	for k, v := range src {
		dst[k] = v
	}
	for k := range src {
		delete(dst, k)
	}
}

// SumMap lets the iteration order escape into a float accumulation.
//
//fafvet:hotpath
func SumMap(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `map iteration order escapes`
		s += v
	}
	return s
}

// Unv calls off-allowlist stdlib.
//
//fafvet:hotpath
func Unv(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64) // want `strconv.FormatFloat is outside the hot-path allowlist`
}

//fafvet:typo-directive // want `unknown fafvet directive`

//fafvet:hotpath // want `misplaced //fafvet:hotpath`
var notAFunc int

func cleanHelper() {}
