// Package waive shows a justified //lint:allow suppression holding back a
// hotpath finding; the analyzer must stay silent.
package waive

// Scratch is annotated but waives its one allocation.
//
//fafvet:hotpath
func Scratch() []int {
	return make([]int, 1) //lint:allow hotpath deliberate fixture suppression
}
