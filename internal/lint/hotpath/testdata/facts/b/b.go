// Package b implements package a's annotated interface and consumes its
// facts.
package b

import "fafnet/internal/afake"

// Lin implements a.Kernel cleanly through a's proven helper.
type Lin struct{ K float64 }

// Eval is an implementation root via the imported interface annotation.
func (l Lin) Eval(t float64) float64 { return a.Scale(t, l.K) }

// Bad implements a.Kernel with an allocation.
type Bad struct{}

// Eval allocates on the hot path.
func (Bad) Eval(t float64) float64 {
	xs := make([]float64, 1)
	return xs[0]
}

// Drive trusts the annotated interface method but also calls an unproven
// cross-package function.
//
//fafvet:hotpath
func Drive(k a.Kernel, t float64) float64 {
	v := k.Eval(t)
	_ = a.Build(1)
	return v
}
