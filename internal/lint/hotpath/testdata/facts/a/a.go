// Package a exports an annotated interface method and one proven-clean
// helper for the cross-package facts test.
package a

// Kernel is the pluggable evaluation kernel.
type Kernel interface {
	// Eval evaluates the envelope at t.
	//
	//fafvet:hotpath
	Eval(t float64) float64
}

// Scale multiplies; it is transitively hot-path-safe and must export a
// clean fact.
func Scale(x, k float64) float64 { return x * k }

// Build allocates; it must export no fact.
func Build(n int) []float64 { return make([]float64, n) }
