package hotpath_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"fafnet/internal/lint"
	"fafnet/internal/lint/facts"
	"fafnet/internal/lint/hotpath"
)

// cleanFact mirrors hotpath's exported per-function fact for assertions.
type cleanFact struct {
	Clean bool `json:"clean"`
}

// checkDir typechecks the sources in dir as pkgPath — resolving module
// imports from deps — and runs hotpath with the given imported fact files.
func checkDir(t *testing.T, dir, pkgPath string, deps map[string]*types.Package, imported map[string]facts.File) ([]lint.Diagnostic, facts.File, *types.Package) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sources under %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	std := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if p, ok := deps[path]; ok {
				return p, nil
			}
			return std.Import(path)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, exported, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{hotpath.Analyzer}, imported)
	if err != nil {
		t.Fatal(err)
	}
	return diags, exported, pkg
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TestCrossPackageFacts drives the facts protocol end to end: package a
// exports an annotated interface method and a clean-function fact; package
// b's implementations of the interface become checked roots, b's calls
// resolve a's facts, and b republishes its own clean methods.
func TestCrossPackageFacts(t *testing.T) {
	const aPath = "fafnet/internal/afake"
	const bPath = "fafnet/internal/bfake"

	aDiags, aFacts, aPkg := checkDir(t, "testdata/facts/a", aPath, nil, nil)
	if len(aDiags) != 0 {
		t.Fatalf("package a should be clean, got %v", aDiags)
	}
	var scale cleanFact
	if !aFacts.Get("hotpath", "Scale", &scale) || !scale.Clean {
		t.Errorf("Scale fact = %+v, want clean", scale)
	}
	var build cleanFact
	if aFacts.Get("hotpath", "Build", &build) {
		t.Errorf("Build exported a fact (%+v); an allocating function must not be proven clean", build)
	}
	var ifaces []string
	if !aFacts.Get("hotpath", "ifaces", &ifaces) {
		t.Fatal("package a exported no annotated-interface fact")
	}
	if len(ifaces) != 1 || ifaces[0] != "Kernel.Eval" {
		t.Errorf("ifaces fact = %v, want [Kernel.Eval]", ifaces)
	}

	bDiags, bFacts, _ := checkDir(t, "testdata/facts/b", bPath,
		map[string]*types.Package{aPath: aPkg},
		map[string]facts.File{aPath: aFacts})

	wantSubstrings := []string{
		"make allocates", // Bad.Eval, a root only via the imported annotation
		"call to afake.Build is not proven hot-path-safe", // Drive's unproven cross-package call
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range bDiags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q in %v", want, bDiags)
		}
	}
	for _, d := range bDiags {
		if strings.Contains(d.Message, "Kernel.Eval") {
			t.Errorf("dynamic call through the annotated interface method was flagged: %v", d)
		}
	}

	var linEval cleanFact
	if !bFacts.Get("hotpath", "Lin.Eval", &linEval) || !linEval.Clean {
		t.Errorf("Lin.Eval fact = %+v, want clean (proven through a.Scale's fact)", linEval)
	}
	var badEval cleanFact
	if bFacts.Get("hotpath", "Bad.Eval", &badEval) {
		t.Errorf("Bad.Eval exported a fact (%+v); it allocates", badEval)
	}
	var drive cleanFact
	if bFacts.Get("hotpath", "Drive", &drive) {
		t.Errorf("Drive exported a fact (%+v); it calls an unproven function", drive)
	}
}
