// Package sarif emits static-analysis results in SARIF 2.1.0, the
// interchange format GitHub code scanning ingests. Only the subset the
// fafvet driver needs is modeled: one run, one tool, rules with short
// descriptions, and results with a single physical location each.
package sarif

import (
	"encoding/json"
	"sort"
)

// SchemaURI and Version identify the SARIF revision the output conforms to.
const (
	SchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	Version   = "2.1.0"
)

// Log is the top-level SARIF document.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one invocation of one tool.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver describes the analysis tool and its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule describes one analyzer.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message is SARIF's text wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	RuleIndex int        `json:"ruleIndex"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location wraps a physical location.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation names a region of an artifact.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation is a file reference. URIs use forward slashes relative
// to the repository root so GitHub can anchor annotations.
type ArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

// Region is a line/column range; only the start is populated.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Finding is the driver's view of one diagnostic, decoupled from the lint
// package to avoid an import cycle.
type Finding struct {
	Analyzer string
	File     string // slash-separated, repo-relative
	Line     int
	Column   int
	Message  string
}

// Build assembles a single-run SARIF log. ruleDocs maps analyzer name to a
// one-line description; analyzers that produced findings but have no doc
// entry still get a rule with the name as description. Rules are sorted by
// ID and results keep their input order (the driver sorts them already).
func Build(toolName, infoURI string, ruleDocs map[string]string, findings []Finding) *Log {
	ids := make(map[string]bool, len(ruleDocs))
	for name := range ruleDocs {
		ids[name] = true
	}
	for _, f := range findings {
		ids[f.Analyzer] = true
	}
	sorted := make([]string, 0, len(ids))
	for name := range ids {
		sorted = append(sorted, name)
	}
	sort.Strings(sorted)

	index := make(map[string]int, len(sorted))
	rules := make([]Rule, 0, len(sorted))
	for i, name := range sorted {
		index[name] = i
		doc := ruleDocs[name]
		if doc == "" {
			doc = name
		}
		rules = append(rules, Rule{ID: name, ShortDescription: Message{Text: doc}})
	}

	results := make([]Result, 0, len(findings))
	for _, f := range findings {
		results = append(results, Result{
			RuleID:    f.Analyzer,
			RuleIndex: index[f.Analyzer],
			Level:     "error",
			Message:   Message{Text: f.Message},
			Locations: []Location{{
				PhysicalLocation: PhysicalLocation{
					ArtifactLocation: ArtifactLocation{URI: f.File, URIBaseID: "%SRCROOT%"},
					Region:           Region{StartLine: f.Line, StartColumn: f.Column},
				},
			}},
		})
	}
	return &Log{
		Schema:  SchemaURI,
		Version: Version,
		Runs: []Run{{
			Tool:    Tool{Driver: Driver{Name: toolName, InformationURI: infoURI, Rules: rules}},
			Results: results,
		}},
	}
}

// Encode renders the log as indented JSON with a trailing newline.
func (l *Log) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(l, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
