// Package dims infers physical dimensions — seconds, bits, bits-per-second —
// for float64 expressions from the naming conventions documented in
// internal/units. It is the shared inference engine behind the unitcheck and
// floatcmp analyzers.
//
// Inference is deliberately conservative: an expression only gets a dimension
// when its name (or the names it is built from) unambiguously declares one.
// Everything else is Unknown, and analyzers never report on Unknown operands,
// so terse local names (`t`, `h`, `svc`) cost coverage but never produce
// false positives. Scale prefixes (Millis, Kbit) map to the base dimension:
// the analysis checks dimensional consistency, not unit scale.
package dims

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// Kind classifies how much the engine knows about an expression.
type Kind int8

const (
	// Unknown means no dimension could be inferred; analyzers must not
	// report on Unknown operands.
	Unknown Kind = iota
	// Scalar means the expression is known to be a dimensionless number
	// (an untyped constant, a count, a ratio, a tolerance).
	Scalar
	// Physical means the expression carries the dimension in Dim.
	Physical
)

// Dim is a dimension expressed as integer exponents over the two base
// quantities of the units package: Dim{T:1} is seconds, Dim{B:1} is bits,
// Dim{T:-1, B:1} is bits per second.
type Dim struct {
	T int8 // exponent of time (seconds)
	B int8 // exponent of data (bits)
}

// The three dimensions the units package works in.
var (
	Seconds = Dim{T: 1}
	Bits    = Dim{B: 1}
	Bps     = Dim{T: -1, B: 1}
)

// String renders the dimension for diagnostics.
func (d Dim) String() string {
	switch d {
	case Dim{}:
		return "dimensionless"
	case Seconds:
		return "seconds"
	case Bits:
		return "bits"
	case Bps:
		return "bits/second"
	}
	return fmt_exp("s", d.T) + fmt_exp("·bit", d.B)
}

func fmt_exp(base string, e int8) string {
	switch e {
	case 0:
		return ""
	case 1:
		return base
	default:
		return base + "^" + itoa(int(e))
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

// Recognized reports whether d is one of the dimensions the units package
// sanctions: dimensionless, seconds, bits, or bits/second. Arithmetic whose
// result falls outside this set (seconds², rate², bit-seconds) is flagged by
// unitcheck as a likely dimensional bug.
func (d Dim) Recognized() bool {
	return d == Dim{} || d == Seconds || d == Bits || d == Bps
}

// Words that pin an identifier to the time dimension wherever they appear.
// Note "second"/"millisecond" are deliberately absent: units.Millisecond and
// friends are unit-conversion factors, which this analysis treats as
// dimensionless scale (a Millis-suffixed name already carries the time
// dimension; multiplying by the conversion factor must preserve it).
var timeWords = map[string]bool{
	"delay": true, "latency": true, "deadline": true, "ttrt": true,
	"tht": true, "jitter": true, "propagation": true, "horizon": true,
	"rotation": true, "overhead": true, "time": true, "period": true,
	"interval": true,
}

// Suffix words that declare a time scale (DelayMillis, HMinAbsMicros).
var timeSuffixes = map[string]bool{
	"seconds": true, "secs": true, "millis": true, "micros": true,
}

// Suffix words that declare a data volume (SigmaBits, C1Kbit, SrcKbit).
var bitSuffixes = map[string]bool{
	"bit": true, "bits": true, "kbit": true, "kbits": true,
	"mbit": true, "mbits": true,
}

// Suffix words that declare a rate (RhoBps, Kbps, Rate16Mbps).
var rateSuffixes = map[string]bool{
	"bps": true, "kbps": true, "mbps": true, "gbps": true,
}

// Words that pin an identifier to the rate dimension wherever they appear.
var rateWords = map[string]bool{
	"rate": true, "bandwidth": true,
}

// FromName infers a dimension from one identifier following the repository's
// naming conventions. The boolean reports whether a dimension was inferred.
func FromName(name string) (Dim, bool) {
	words := splitWords(name)
	if len(words) == 0 {
		return Dim{}, false
	}
	last := words[len(words)-1]
	// Explicit unit suffixes take priority: they state the unit outright.
	switch {
	case rateSuffixes[last]:
		return Bps, true
	case bitSuffixes[last]:
		return Bits, true
	case timeSuffixes[last]:
		return Seconds, true
	}
	for _, w := range words {
		w = singular(w)
		switch {
		case rateWords[w]:
			return Bps, true
		case timeWords[w]:
			return Seconds, true
		}
	}
	return Dim{}, false
}

// singular strips a plural 's' so "delays" matches "delay". Unit suffixes
// ("bits", "bps") are matched before this runs and keep their own spelling.
func singular(w string) string {
	if len(w) > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") {
		return w[:len(w)-1]
	}
	return w
}

// splitWords breaks an identifier into lowercase words on camelCase, digits
// and underscores ("SrcBufferBits" → src, buffer, bits; "P1Millis" → p1,
// millis; "TTRTMillis" → ttrt, millis).
func splitWords(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = nil
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case unicode.IsUpper(r):
			// New word at lower→Upper and at the last capital of an
			// acronym run (TTRTMillis → TTRT | Millis).
			prevLower := i > 0 && (unicode.IsLower(runes[i-1]) || unicode.IsDigit(runes[i-1]))
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if prevLower || (nextLower && len(cur) > 1) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

// IsFloat reports whether t is float64/float32 or an untyped numeric — the
// only types dimension inference applies to.
func IsFloat(t types.Type) bool { return isFloat(t) }

// isFloat reports whether t is float64/float32 or an untyped numeric.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0 || b.Info()&types.IsUntyped != 0 && b.Info()&types.IsNumeric != 0
}

// OfExpr infers the dimension of e bottom-up. The returned Kind is Unknown
// whenever any contributing part resists inference.
func OfExpr(info *types.Info, e ast.Expr) (Dim, Kind) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return OfExpr(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return OfExpr(info, e.X)
		}
	case *ast.BasicLit:
		if e.Kind == token.FLOAT || e.Kind == token.INT {
			return Dim{}, Scalar
		}
	case *ast.Ident:
		return ofNamed(info, e, e.Name)
	case *ast.SelectorExpr:
		return ofNamed(info, e, e.Sel.Name)
	case *ast.IndexExpr:
		// delays[id]: the collection's name describes the elements.
		return OfExpr(info, e.X)
	case *ast.CallExpr:
		return ofCall(info, e)
	case *ast.BinaryExpr:
		return ofBinary(info, e)
	}
	return Dim{}, Unknown
}

// ofNamed infers from a (possibly qualified) identifier. Name-based inference
// runs first so that constants like fddi.MaxFrameBits keep their declared
// dimension; only nameless constants degrade to Scalar.
func ofNamed(info *types.Info, e ast.Expr, name string) (Dim, Kind) {
	tv, ok := info.Types[e]
	if !ok || !isFloat(tv.Type) {
		return Dim{}, Unknown
	}
	if d, ok := FromName(name); ok {
		return d, Physical
	}
	if tv.Value != nil {
		// A named constant without a unit name (units.Eps, units.RelTol,
		// a grid nudge): a tolerance or scale factor, dimensionless.
		return Dim{}, Scalar
	}
	return Dim{}, Unknown
}

// ofCall infers the dimension of a call result from the callee's name:
// in.Bits(t) yields bits, in.LongTermRate() yields bits/second. A handful of
// dimension-preserving stdlib/units helpers pass their argument's dimension
// through.
func ofCall(info *types.Info, call *ast.CallExpr) (Dim, Kind) {
	tv, ok := info.Types[call]
	if !ok || !isFloat(tv.Type) {
		return Dim{}, Unknown
	}
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return Dim{}, Unknown
	}
	switch name {
	case "Abs", "Floor", "Ceil", "Min", "Max", "Clamp":
		// Dimension-preserving: take the first argument with a known
		// dimension; conflicting known argument dimensions are the
		// arguments' own problem (reported at the call site by unitcheck).
		for _, arg := range call.Args {
			if d, k := OfExpr(info, arg); k == Physical {
				return d, k
			}
		}
		return Dim{}, Unknown
	case "CeilDiv", "FloorDiv":
		// units.CeilDiv(a, b) counts how many b fit in a: dimensionless.
		return Dim{}, Scalar
	case "float64", "float32":
		if len(call.Args) == 1 {
			if d, k := OfExpr(info, call.Args[0]); k == Physical {
				return d, k
			}
		}
		return Dim{}, Unknown
	}
	if d, ok := FromName(name); ok {
		return d, Physical
	}
	return Dim{}, Unknown
}

// ofBinary propagates dimensions through arithmetic. Mismatches are not
// reported here — unitcheck walks the same nodes and reports; this function
// only answers "what comes out".
func ofBinary(info *types.Info, e *ast.BinaryExpr) (Dim, Kind) {
	ld, lk := OfExpr(info, e.X)
	rd, rk := OfExpr(info, e.Y)
	switch e.Op {
	case token.ADD, token.SUB:
		// The sum of a physical quantity and anything known keeps the
		// physical dimension (tolerances and scalars ride along).
		if lk == Physical {
			return ld, Physical
		}
		if rk == Physical {
			return rd, Physical
		}
		if lk == Scalar && rk == Scalar {
			return Dim{}, Scalar
		}
	case token.MUL:
		if lk == Unknown || rk == Unknown {
			return Dim{}, Unknown
		}
		return Dim{T: ld.T + rd.T, B: ld.B + rd.B}, maxKind(lk, rk)
	case token.QUO:
		if lk == Unknown || rk == Unknown {
			return Dim{}, Unknown
		}
		return Dim{T: ld.T - rd.T, B: ld.B - rd.B}, maxKind(lk, rk)
	}
	return Dim{}, Unknown
}

func maxKind(a, b Kind) Kind {
	if a == Physical || b == Physical {
		return Physical
	}
	return Scalar
}
