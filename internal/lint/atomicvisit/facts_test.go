package atomicvisit_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"fafnet/internal/lint"
	"fafnet/internal/lint/atomicvisit"
	"fafnet/internal/lint/facts"
)

// accessFact mirrors atomicvisit's exported per-variable fact.
type accessFact struct {
	Atomic bool `json:"atomic,omitempty"`
	Plain  bool `json:"plain,omitempty"`
}

// checkDir typechecks the sources in dir as pkgPath — resolving module
// imports from deps — and runs atomicvisit with the given imported facts.
func checkDir(t *testing.T, dir, pkgPath string, deps map[string]*types.Package, imported map[string]facts.File) ([]lint.Diagnostic, facts.File, *types.Package) {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no sources under %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range matches {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
	}
	std := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if p, ok := deps[path]; ok {
				return p, nil
			}
			return std.Import(path)
		}),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", dir, err)
	}
	diags, exported, err := lint.Run(fset, files, pkg, info, []*lint.Analyzer{atomicvisit.Analyzer}, imported)
	if err != nil {
		t.Fatal(err)
	}
	return diags, exported, pkg
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// TestCrossPackageFacts drives the facts protocol: package a publishes its
// access modes, package b's mixed usage is flagged from the importing
// side in both directions.
func TestCrossPackageFacts(t *testing.T) {
	const aPath = "fafnet/internal/avafake"
	const bPath = "fafnet/internal/avbfake"

	aDiags, aFacts, aPkg := checkDir(t, "testdata/facts/a", aPath, nil, nil)
	if len(aDiags) != 0 {
		t.Fatalf("package a should be clean, got %v", aDiags)
	}
	cases := []struct {
		key  string
		want accessFact
	}{
		{"Ctr.N", accessFact{Atomic: true}},
		{"Hits", accessFact{Atomic: true}},
		{"Flags", accessFact{Plain: true}},
	}
	for _, c := range cases {
		var got accessFact
		if !aFacts.Get("atomicvisit", c.key, &got) {
			t.Errorf("no fact exported for %s", c.key)
			continue
		}
		if got != c.want {
			t.Errorf("fact %s = %+v, want %+v", c.key, got, c.want)
		}
	}

	bDiags, _, _ := checkDir(t, "testdata/facts/b", bPath,
		map[string]*types.Package{aPath: aPkg},
		map[string]facts.File{aPath: aFacts})

	wantSubstrings := []string{
		"N is accessed with sync/atomic in its declaring package fafnet/internal/avafake but plainly here",
		"Hits is accessed with sync/atomic",
		"Flags is accessed plainly in its declaring package fafnet/internal/avafake but atomically here",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, d := range bDiags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing diagnostic containing %q in %v", want, bDiags)
		}
	}
	for _, d := range bDiags {
		if strings.Contains(d.Message, "Ok") {
			t.Errorf("the sanctioned atomic read was flagged: %v", d)
		}
	}
}
