// Package b mixes access modes against package a's exported facts.
package b

import (
	"sync/atomic"

	a "fafnet/internal/avafake"
)

// Read reads the counter plainly against its atomic contract.
func Read(c *a.Ctr) uint64 {
	return c.N // flagged: a accesses Ctr.N atomically
}

// Drain resets Hits plainly.
func Drain() {
	a.Hits = 0 // flagged: a accesses Hits atomically
}

// Mark bumps Flags atomically although a only ever touches it plainly.
func Mark() {
	atomic.AddUint64(&a.Flags, 1) // flagged from this side
}

// Ok reads Hits the sanctioned way.
func Ok() uint64 { return atomic.LoadUint64(&a.Hits) }
