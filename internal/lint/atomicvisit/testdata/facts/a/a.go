// Package a exports atomically- and plainly-accessed variables for the
// cross-package facts test.
package a

import "sync/atomic"

// Ctr counts admissions; N is accessed through sync/atomic here.
type Ctr struct{ N uint64 }

// Inc bumps the counter atomically.
func (c *Ctr) Inc() { atomic.AddUint64(&c.N, 1) }

// Hits is accessed atomically in this package.
var Hits uint64

// Bump records a hit.
func Bump() { atomic.AddUint64(&Hits, 1) }

// Flags is only ever accessed plainly here.
var Flags uint64

// SetFlag sets a bit.
func SetFlag(b uint64) { Flags |= b }
