// Package waive holds a deliberately waived mixed access.
package waive

import "sync/atomic"

var n uint64

func inc() { atomic.AddUint64(&n, 1) }

func read() uint64 {
	return n //lint:allow atomicvisit deliberate fixture suppression
}
