// Package av exercises every atomicvisit rule inside one package.
package av

import "sync/atomic"

// ctr mixes access modes on n, keeps safe purely atomic and cold purely
// plain.
type ctr struct {
	n    uint64
	safe uint64
	cold uint64
}

func (c *ctr) inc() { atomic.AddUint64(&c.n, 1) }

func (c *ctr) read() uint64 {
	return c.n // want `n is accessed with sync/atomic elsewhere`
}

func (c *ctr) incSafe() { atomic.AddUint64(&c.safe, 1) }

func (c *ctr) readSafe() uint64 { return atomic.LoadUint64(&c.safe) }

func (c *ctr) readCold() uint64 { return c.cold }

// newCtr constructs a ctr; composite-literal keys are exempt.
func newCtr() *ctr { return &ctr{n: 0} }

var hits uint64

func bump() { atomic.AddUint64(&hits, 1) }

func drain() {
	hits = 0 // want `hits is accessed with sync/atomic elsewhere`
}

func escape(p *uint64) { _ = p }

// leak lets the address escape to an unchecked access path.
func leak() {
	escape(&hits) // want `hits is accessed with sync/atomic elsewhere`
}

// local shows the rule also binds local variables.
func local() uint64 {
	var x uint64
	atomic.StoreUint64(&x, 7)
	return x // want `x is accessed with sync/atomic elsewhere`
}
