package atomicvisit_test

import (
	"testing"

	"fafnet/internal/lint/atomicvisit"
	"fafnet/internal/lint/linttest"
)

func TestAtomicvisit(t *testing.T) {
	linttest.Run(t, atomicvisit.Analyzer, "testdata/av", "fafnet/internal/avfake")
}

// TestWaiver checks //lint:allow atomicvisit suppresses a finding.
func TestWaiver(t *testing.T) {
	linttest.Run(t, atomicvisit.Analyzer, "testdata/waive", "fafnet/internal/waivefake")
}

// TestOutOfScopeSilent runs the same fixture under a foreign module path;
// the analyzer must not fire outside the module.
func TestOutOfScopeSilent(t *testing.T) {
	linttest.RunExpectNone(t, atomicvisit.Analyzer, "testdata/av", "example.com/outside")
}
