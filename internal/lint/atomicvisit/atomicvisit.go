// Package atomicvisit implements the atomic-access consistency checker: a
// struct field or variable that is accessed through the sync/atomic
// function API anywhere must be accessed atomically everywhere. Mixing
// atomic.AddUint64(&s.n, 1) on one goroutine with a plain s.n++ (or even a
// plain read) on another is the classic pre-sharding data race: the plain
// access tears, the race detector only catches it when a test interleaves
// badly, and the counter silently drifts. This is the standing guard for
// ROADMAP item 2's per-shard admission controllers, whose whole design is
// plain-looking fields mutated through sync/atomic.
//
// The rules:
//
//   - Any call to a sync/atomic function (AddT, LoadT, StoreT, SwapT,
//     CompareAndSwapT) taking &x marks x as atomically accessed.
//   - Every other use of x is then a finding — reads, writes, compound
//     assignments, and taking &x for anything but another sync/atomic
//     call (an escaped address is an unchecked access path).
//   - Composite-literal construction is exempt: a value still being built
//     is not yet shared. So is the declaration itself.
//
// Enforcement crosses packages via facts: for every exported field of an
// exported struct and every exported package variable whose type the
// old-style atomic API can address, the package exports which access modes
// it observed. A downstream plain access to an upstream-atomic variable is
// flagged at the access; a downstream atomic access to a variable its own
// package accesses plainly is flagged too (the declaring package cannot
// see the importer, so the importing side carries the finding). Sibling
// packages that never import each other are out of reach — the fact flow
// follows the import DAG; keep an atomic variable's accessors in one
// package or behind accessor functions.
//
// The typed atomics (atomic.Uint64, atomic.Pointer[T]) make this analyzer
// redundant by construction — prefer them; this checker exists for the
// fields that stay plain for layout or API reasons.
package atomicvisit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"fafnet/internal/lint"
)

// Analyzer reports mixed plain/atomic access to the same variable.
var Analyzer = &lint.Analyzer{
	Name: "atomicvisit",
	Doc: `flag variables accessed both through sync/atomic and plainly

A field or variable passed by address to a sync/atomic function (Add, Load,
Store, Swap, CompareAndSwap) must be accessed through sync/atomic
everywhere: every plain read, write or escaping address-of is reported.
Composite-literal construction is exempt. Access modes of exported fields
and package variables are exported as facts, so mixed access across an
import edge is caught from the importing side.`,
	Run:          run,
	ExportsFacts: true,
	FactTypes:    []string{"accessFact"},
}

// accessFact records the access modes one package observed for an exported
// field or package variable.
type accessFact struct {
	Atomic bool `json:"atomic,omitempty"`
	Plain  bool `json:"plain,omitempty"`
}

func run(pass *lint.Pass) error {
	p := pass.Pkg.Path()
	if p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return nil
	}
	c := &checker{
		pass:       pass,
		atomicVars: make(map[*types.Var][]token.Pos),
		plainUses:  make(map[*types.Var][]token.Pos),
		sanctioned: make(map[*ast.Ident]bool),
		foreign:    make(map[*types.Var]*accessFact),
	}
	c.collectAtomicCalls()
	c.collectPlainUses()
	c.report()
	c.exportFacts()
	return nil
}

type checker struct {
	pass *lint.Pass

	// atomicVars maps each variable passed to a sync/atomic function to the
	// call positions, in source order.
	atomicVars map[*types.Var][]token.Pos
	// plainUses maps each candidate variable to its non-atomic use
	// positions.
	plainUses map[*types.Var][]token.Pos
	// sanctioned marks identifiers that are legitimate non-plain
	// appearances: the operand inside a sync/atomic call's address-of, and
	// composite-literal keys.
	sanctioned map[*ast.Ident]bool
	// foreign caches imported access facts per variable (nil = no fact).
	foreign map[*types.Var]*accessFact
}

// isAtomicCall reports whether call invokes one of the old-style
// sync/atomic functions, returning its first argument.
func isAtomicCall(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	name := fn.Name()
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			if len(call.Args) == 0 {
				return nil, false
			}
			return call.Args[0], true
		}
	}
	return nil, false
}

// addressedVar resolves &x or &s.f to the variable x / field f.
func addressedVar(info *types.Info, e ast.Expr) (*types.Var, *ast.Ident) {
	ue, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return nil, nil
	}
	switch x := ast.Unparen(ue.X).(type) {
	case *ast.Ident:
		v, _ := info.Uses[x].(*types.Var)
		return v, x
	case *ast.SelectorExpr:
		v, _ := info.Uses[x.Sel].(*types.Var)
		return v, x.Sel
	}
	return nil, nil
}

// collectAtomicCalls finds every sync/atomic call and records its operand
// variable; the operand identifier is sanctioned.
func (c *checker) collectAtomicCalls() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		if c.testFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg, ok := isAtomicCall(info, call)
			if !ok {
				return true
			}
			v, id := addressedVar(info, arg)
			if v == nil {
				return true
			}
			c.sanctioned[id] = true
			c.atomicVars[v] = append(c.atomicVars[v], call.Pos())
			return true
		})
	}
}

// collectPlainUses records every non-sanctioned use of a candidate
// variable. Composite-literal keys are sanctioned first.
func (c *checker) collectPlainUses() {
	info := c.pass.TypesInfo
	for _, f := range c.pass.Files {
		if c.testFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if cl, ok := n.(*ast.CompositeLit); ok {
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							c.sanctioned[id] = true
						}
					}
				}
			}
			return true
		})
	}
	for _, f := range c.pass.Files {
		if c.testFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || c.sanctioned[id] {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || !candidate(v) {
				return true
			}
			c.plainUses[v] = append(c.plainUses[v], id.Pos())
			return true
		})
	}
}

// candidate reports whether v could be the operand of an old-style
// sync/atomic call: a field or variable of one of the addressable atomic
// kinds. Narrowing here keeps the plain-use index (and the exported facts)
// small.
func candidate(v *types.Var) bool {
	switch t := v.Type().Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	case *types.Pointer:
		return true
	}
	return false
}

// report emits mixed-access findings: locally mixed variables, plain uses
// of upstream-atomic variables, and atomic uses of upstream-plain
// variables.
func (c *checker) report() {
	var vars []*types.Var
	for v := range c.atomicVars {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		// Locally mixed.
		for _, pos := range c.plainUses[v] {
			c.pass.Reportf(pos, "%s is accessed with sync/atomic elsewhere (e.g. %s) but plainly here; mixed access tears — use sync/atomic everywhere or a typed atomic", v.Name(), c.pass.Fset.Position(c.atomicVars[v][0]))
		}
		// Atomic here, plain in the declaring package.
		if fact := c.importedFact(v); fact != nil && fact.Plain && !fact.Atomic {
			for _, pos := range c.atomicVars[v] {
				c.pass.Reportf(pos, "%s is accessed plainly in its declaring package %s but atomically here; mixed access tears — use sync/atomic everywhere or a typed atomic", v.Name(), v.Pkg().Path())
			}
		}
	}
	// Plain here, atomic in the declaring package.
	var pvars []*types.Var
	for v := range c.plainUses {
		if _, local := c.atomicVars[v]; !local {
			pvars = append(pvars, v)
		}
	}
	sort.Slice(pvars, func(i, j int) bool { return pvars[i].Pos() < pvars[j].Pos() })
	for _, v := range pvars {
		if fact := c.importedFact(v); fact != nil && fact.Atomic {
			for _, pos := range c.plainUses[v] {
				c.pass.Reportf(pos, "%s is accessed with sync/atomic in its declaring package %s but plainly here; mixed access tears — use sync/atomic everywhere or a typed atomic", v.Name(), v.Pkg().Path())
			}
		}
	}
}

// importedFact resolves the access fact for a variable declared in another
// module package, nil when there is none.
func (c *checker) importedFact(v *types.Var) *accessFact {
	pkg := v.Pkg()
	if pkg == nil || pkg == c.pass.Pkg {
		return nil
	}
	path := pkg.Path()
	if path != lint.ModulePath && !strings.HasPrefix(path, lint.ModulePath+"/") {
		return nil
	}
	if f, ok := c.foreign[v]; ok {
		return f
	}
	var fact accessFact
	var found *accessFact
	if key, ok := factKey(pkg, v); ok && c.pass.ImportFact(path, key, &fact) {
		found = &fact
	}
	c.foreign[v] = found
	return found
}

// factKey names an exported package variable ("Name") or an exported field
// of an exported struct ("Owner.Name") for fact exchange.
func factKey(pkg *types.Package, v *types.Var) (string, bool) {
	if !v.Exported() {
		return "", false
	}
	if !v.IsField() {
		if v.Parent() == pkg.Scope() {
			return v.Name(), true
		}
		return "", false
	}
	owner := fieldOwnerType(pkg, v)
	if owner == nil || !owner.Exported() {
		return "", false
	}
	return owner.Name() + "." + v.Name(), true
}

// fieldOwnerType finds the package-scope named struct type declaring field
// v.
func fieldOwnerType(pkg *types.Package, v *types.Var) *types.TypeName {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return tn
			}
		}
	}
	return nil
}

// exportFacts publishes observed access modes for this package's own
// exported candidates, merged with whatever upstream packages already
// reported for them.
func (c *checker) exportFacts() {
	merged := make(map[*types.Var]*accessFact)
	note := func(v *types.Var, atomic bool) {
		if v.Pkg() != c.pass.Pkg {
			return
		}
		if _, ok := factKey(c.pass.Pkg, v); !ok {
			return
		}
		f := merged[v]
		if f == nil {
			f = &accessFact{}
			merged[v] = f
		}
		if atomic {
			f.Atomic = true
		} else {
			f.Plain = true
		}
	}
	for v := range c.atomicVars {
		note(v, true)
	}
	for v := range c.plainUses {
		note(v, false)
	}
	var vars []*types.Var
	for v := range merged {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		key, _ := factKey(c.pass.Pkg, v)
		_ = c.pass.ExportFact(key, *merged[v])
	}
}

// testFile reports whether f is a _test.go file; the -race suite polices
// those dynamically.
func (c *checker) testFile(f *ast.File) bool {
	return strings.HasSuffix(c.pass.Fset.Position(f.Pos()).Filename, "_test.go")
}
