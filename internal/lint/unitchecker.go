package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"runtime"
	"strings"

	"fafnet/internal/lint/facts"
)

// This file implements the `go vet -vettool` driver protocol — a
// dependency-free equivalent of golang.org/x/tools/go/analysis/unitchecker.
// The go command invokes the tool three ways:
//
//	fafvet -V=full        print a version line keyed by the binary's hash
//	fafvet -flags         print the supported flags as JSON
//	fafvet [flags] x.cfg  analyze one package described by the JSON config
//
// The .cfg file names the package's sources and maps each import path to a
// compiler export-data file; type-checking therefore needs no network, no
// GOPATH and no source for dependencies.

// Config is the per-package configuration the go command writes for vet
// tools. Field names and semantics follow cmd/go's vetConfig.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// ModulePath is the import-path prefix of the packages this suite analyzes
// in depth. Dependency packages outside the module (the standard library)
// get an empty fact file and are otherwise skipped.
const ModulePath = "fafnet"

// MachinePrefix introduces one machine-readable diagnostic line on stderr
// when the tool runs with -emit=machine. The standalone driver (cmd/fafvet
// run on package patterns) greps these lines out of `go vet` output to
// aggregate diagnostics across packages.
const MachinePrefix = "fafvetdiag "

// MachineDiag is the JSON payload of one MachinePrefix line.
type MachineDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Main is the entry point for a vettool built from lint analyzers. It never
// returns.
func Main(analyzers ...*Analyzer) {
	progname := os.Args[0]
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")

	printVersion := flag.String("V", "", "print version and exit (-V=full)")
	printFlags := flag.Bool("flags", false, "print analyzer flags in JSON")
	listAnalyzers := flag.Bool("analyzers", false, "print the analyzer inventory as JSON and exit")
	emit := flag.String("emit", "text", `diagnostic format on stderr: "text" or "machine"`)
	format := flag.String("format", "text", `driver-mode output format: "text", "json", "sarif" or "dot" (lock graph)`)
	output := flag.String("o", "", "driver-mode output file (default stdout)")
	baseline := flag.String("baseline", "", "driver-mode baseline JSON of accepted findings")
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+firstLine(a.Doc))
		for _, f := range a.Flags {
			flag.BoolVar(f.Value, f.Name, false, f.Usage)
		}
	}
	flag.Parse()

	switch {
	case *printVersion == "full":
		versionLine(progname)
		os.Exit(0)
	case *printVersion != "":
		log.Fatalf("unsupported flag value: -V=%s", *printVersion)
	case *printFlags:
		flagsJSON(analyzers)
		os.Exit(0)
	case *listAnalyzers:
		analyzersJSON(analyzers)
		os.Exit(0)
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		// Not a go-vet unit invocation: run as a standalone driver over
		// package patterns.
		var disabled []string
		for _, a := range analyzers {
			if !*enabled[a.Name] {
				disabled = append(disabled, a.Name)
			}
		}
		os.Exit(Driver(analyzers, disabled, DriverOptions{
			Format:   *format,
			Output:   *output,
			Baseline: *baseline,
		}, args))
	}
	var active []*Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	diags, err := runConfig(args[0], active)
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		if *emit == "machine" {
			data, err := json.Marshal(MachineDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(os.Stderr, "%s%s\n", MachinePrefix, data)
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// versionLine prints the tool identification the go command's build cache
// expects: "<prog> version devel comments-go-here buildID=<content hash>".
func versionLine(progname string) {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)[:16]))
}

// flagsJSON prints the flag inventory `go vet` queries before running the
// tool, in the format cmd/go/internal/vet expects.
func flagsJSON(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "V", Bool: false, Usage: "print version and exit"},
		{Name: "flags", Bool: true, Usage: "print analyzer flags in JSON"},
		{Name: "emit", Bool: false, Usage: "diagnostic format on stderr: text or machine"},
	}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: firstLine(a.Doc)})
		for _, f := range a.Flags {
			flags = append(flags, jsonFlag{Name: f.Name, Bool: true, Usage: f.Usage})
		}
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// analyzersJSON prints the machine-readable analyzer inventory in
// registration order: name, the first line of the doc, and the Go type
// names of the facts the analyzer exports. The cmd/fafvet docs test diffs
// this listing against the README analyzer table in both directions.
func analyzersJSON(analyzers []*Analyzer) {
	type entry struct {
		Name  string   `json:"name"`
		Doc   string   `json:"doc"`
		Facts []string `json:"facts,omitempty"`
	}
	list := make([]entry, 0, len(analyzers))
	for _, a := range analyzers {
		list = append(list, entry{Name: a.Name, Doc: firstLine(a.Doc), Facts: a.FactTypes})
	}
	data, err := json.MarshalIndent(list, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(data, '\n'))
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runConfig analyzes the one package described by cfgFile and returns its
// diagnostics.
func runConfig(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, fmt.Errorf("reading vet config: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", cfgFile, err)
	}

	inModule := cfg.ImportPath == ModulePath || strings.HasPrefix(cfg.ImportPath, ModulePath+"/")
	if cfg.VetxOnly {
		// A dependency vetted only for its facts. Standard-library (and any
		// other out-of-module) packages carry no fafnet facts: write the
		// placeholder the go command's cache expects and skip the analysis.
		if !inModule || !anyExportsFacts(analyzers) {
			return nil, writeVetx(cfg.VetxOutput, nil)
		}
		var factOnly []*Analyzer
		for _, a := range analyzers {
			if a.ExportsFacts {
				factOnly = append(factOnly, a)
			}
		}
		analyzers = factOnly
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, writeVetx(cfg.VetxOutput, nil)
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, runtime.GOARCH),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx(cfg.VetxOutput, nil)
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	imported := make(map[string]facts.File)
	for path, file := range cfg.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue // dependency not vetted with facts; degrade to no facts
		}
		f, err := facts.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("facts for %s: %w", path, err)
		}
		imported[path] = f
	}

	diags, exported, err := Run(fset, files, pkg, info, analyzers, imported)
	if err != nil {
		return nil, err
	}
	encoded, err := facts.Encode(exported)
	if err != nil {
		return nil, err
	}
	if err := writeVetx(cfg.VetxOutput, encoded); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

// anyExportsFacts reports whether any analyzer participates in the facts
// protocol.
func anyExportsFacts(analyzers []*Analyzer) bool {
	for _, a := range analyzers {
		if a.ExportsFacts {
			return true
		}
	}
	return false
}

// writeVetx writes the package's fact file. The go command caches and reuses
// this file, so it must exist (possibly empty) after every successful run.
func writeVetx(path string, data []byte) error {
	if path == "" {
		return nil
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		return fmt.Errorf("writing facts output: %w", err)
	}
	return nil
}
