package errdrop_test

import (
	"testing"

	"fafnet/internal/lint/errdrop"
	"fafnet/internal/lint/linttest"
)

func TestErrdrop(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "testdata/e", "fafnet/internal/errdroptestdata")
}

// TestWaiver checks a justified //lint:allow errdrop comment suppresses the
// finding (no want comments in the fixture: the run must be silent).
func TestWaiver(t *testing.T) {
	linttest.Run(t, errdrop.Analyzer, "testdata/waive", "fafnet/internal/errdropwaive")
}

// TestOutOfModule checks the analyzer is inert outside the module.
func TestOutOfModule(t *testing.T) {
	linttest.RunExpectNone(t, errdrop.Analyzer, "testdata/e", "example.com/external/e")
}
