// Package e exercises the errdrop analyzer: deadline setters, write-path
// file handles, module Release bools, the three drop shapes, and the
// checked-call counterexamples.
package e

import (
	"net"
	"os"
	"time"
)

// Ring mimics the module's bandwidth-release shape.
type Ring struct{}

// Release frees connID's allocation, reporting whether it was held.
func (r *Ring) Release(connID string) bool { return connID != "" }

// Deadlines shows the three drop shapes on deadline setters.
func Deadlines(c net.Conn) error {
	_ = c.SetReadDeadline(time.Now()) // want `the error from SetReadDeadline is dropped`
	c.SetWriteDeadline(time.Now())    // want `the error from SetWriteDeadline is dropped`
	defer c.SetDeadline(time.Time{})  // want `the error from SetDeadline is dropped`
	if err := c.SetDeadline(time.Now()); err != nil {
		return err // checked: fine
	}
	return nil
}

// Releases drops and checks the bookkeeping bool.
func Releases(r *Ring) bool {
	r.Release("c1")     // want `the bool from errdroptestdata\.Ring\.Release is dropped`
	_ = r.Release("c2") // want `the bool from errdroptestdata\.Ring\.Release is dropped`
	return r.Release("c3")
}

// Files opens for writing, then drops the flush.
func Files(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `the error from \(\*os\.File\)\.Close on a file this function opened for writing is dropped`
	if _, err := f.WriteString("x"); err != nil {
		return err
	}
	_ = f.Sync() // want `the error from \(\*os\.File\)\.Sync on a file this function opened for writing is dropped`
	return nil
}

// Appended uses the two-value os.OpenFile form and a closure.
func Appended(path string) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cleanup := func() {
		f.Close() // want `the error from \(\*os\.File\)\.Close on a file this function opened for writing is dropped`
	}
	cleanup()
	return nil
}

// ReadPath files are out of scope: Close-on-read loses nothing.
func ReadPath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return err
}

// Checked closes a write-path file properly.
func Checked(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.WriteString("x"); err != nil {
		return err
	}
	return f.Close()
}
