package e

import (
	"net"
	"time"
)

// Test files are out of errdrop's scope: this drop draws no diagnostic
// (the harness would flag an unexpected one — there is no want comment).
func dropInTest(c net.Conn) {
	_ = c.SetDeadline(time.Now())
}
