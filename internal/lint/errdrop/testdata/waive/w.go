// Package w holds the waiver fixture on its own: the out-of-module run of
// the main testdata must stay silent, and an allow comment there would be
// reported as stale once the analyzer goes inert.
package w

import "os"

// Waived drops a write-path Close deliberately, with the reason in-place.
func Waived(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, werr := f.WriteString("x"); werr != nil {
		f.Close() //lint:allow errdrop the write error already reports the failure
		return werr
	}
	return f.Close()
}
