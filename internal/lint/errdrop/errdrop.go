// Package errdrop implements the dropped-error analyzer. It is not a
// general errcheck: it polices a short list of calls whose failures this
// repository has decided are never ignorable, because dropping them turns
// a detectable fault into silent data loss or leaked bandwidth:
//
//   - obs.AuditLog Append, Sync and Close — the audit log is the replay
//     source of truth; a record that never reached the kernel or a tail
//     that never reached disk is undetectable corruption.
//   - (*os.File) Close and Sync on files the same function opened with
//     os.Create or os.OpenFile — write-path files, where Close is the last
//     chance to see a buffered write fail.
//   - SetDeadline / SetReadDeadline / SetWriteDeadline — a deadline that
//     silently failed to arm disables the I/O timeout hardening.
//   - Release(connID) bool on module types (fddi.Ring, tokenring.Ring,
//     core.Controller) — an unchecked false means synchronous bandwidth
//     bookkeeping leaked or double-freed.
//
// A call "drops" its result when it stands alone as a statement, is
// assigned entirely to blanks (`_ = f.Close()`), or is deferred directly.
// Intentional drops carry a justification:
//
//	//lint:allow errdrop <reason>
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"fafnet/internal/lint"
	"fafnet/internal/lint/heldset"
)

// Analyzer is the dropped-error check.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc:  "flag dropped errors on audit-log, write-path file, deadline and bandwidth-release calls",
	Run:  run,
}

func run(pass *lint.Pass) error {
	if p := pass.Pkg.Path(); p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return nil
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc scans one function (closures included): first the os.File
// provenance pass, then the dropped-call pass.
func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	opened := make(map[*types.Var]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isOSOpen(pass.TypesInfo, call) {
			return true
		}
		for _, lhs := range as.Lhs {
			if v := lhsVar(pass.TypesInfo, lhs); v != nil && isOSFilePtr(v.Type()) {
				opened[v] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, _ = n.X.(*ast.CallExpr)
		case *ast.DeferStmt:
			call = n.Call
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			allBlank := true
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			if allBlank {
				call, _ = n.Rhs[0].(*ast.CallExpr)
			}
		}
		if call != nil {
			checkDrop(pass, call, opened)
		}
		return true
	})
}

// checkDrop reports call when it is one of the policed shapes.
func checkDrop(pass *lint.Pass, call *ast.CallExpr, opened map[*types.Var]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	name := fn.Name()
	switch {
	case isAuditLogMethod(fn):
		if name == "Append" || name == "Sync" || name == "Close" {
			pass.Reportf(call.Pos(), "the error from (obs.AuditLog).%s is dropped; a lost or unsynced audit record is silent replay corruption — log or return it, or waive with //lint:allow errdrop <reason>", name)
		}
	case isDeadlineSetter(fn):
		pass.Reportf(call.Pos(), "the error from %s is dropped; a deadline that failed to arm silently disables the I/O timeout — handle it, or waive with //lint:allow errdrop <reason>", name)
	case isModuleRelease(fn):
		pass.Reportf(call.Pos(), "the bool from %s.Release is dropped; an unmatched release silently corrupts synchronous-bandwidth bookkeeping — check it, or waive with //lint:allow errdrop <reason>", receiverName(fn))
	case isOSFileMethod(fn) && (name == "Close" || name == "Sync"):
		if v := heldset.ResolveVar(pass.TypesInfo, sel.X); v != nil && opened[v] {
			pass.Reportf(call.Pos(), "the error from (*os.File).%s on a file this function opened for writing is dropped; a failed flush loses buffered bytes — handle it, or waive with //lint:allow errdrop <reason>", name)
		}
	}
}

// lhsVar resolves an assignment target to its variable, whether the
// statement defines it (`:=`, a Def) or reassigns it (`=`, a Use).
func lhsVar(info *types.Info, x ast.Expr) *types.Var {
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		if v, ok := info.Defs[id].(*types.Var); ok {
			return v
		}
	}
	return heldset.ResolveVar(info, x)
}

// isOSOpen matches os.Create and os.OpenFile calls.
func isOSOpen(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
		return false
	}
	return fn.Name() == "Create" || fn.Name() == "OpenFile"
}

// isOSFilePtr reports whether t is *os.File.
func isOSFilePtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// recvNamed returns the (possibly pointer-stripped) named receiver type.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isAuditLogMethod matches methods on the module's obs.AuditLog.
func isAuditLogMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == lint.ModulePath+"/internal/obs" && named.Obj().Name() == "AuditLog"
}

// isDeadlineSetter matches Set{,Read,Write}Deadline methods with the
// net.Conn shape func(time.Time) error — concrete net types, the net.Conn
// interface, and module wrappers (faultnet.Conn) alike.
func isDeadlineSetter(fn *types.Func) bool {
	switch fn.Name() {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isNamed(sig.Params().At(0).Type(), "time", "Time") && isErrorType(sig.Results().At(0).Type())
}

// isModuleRelease matches Release(string) bool methods on module types.
func isModuleRelease(fn *types.Func) bool {
	if fn.Name() != "Release" {
		return false
	}
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if p := named.Obj().Pkg().Path(); p != lint.ModulePath && !strings.HasPrefix(p, lint.ModulePath+"/") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// isOSFileMethod matches methods declared on os.File.
func isOSFileMethod(fn *types.Func) bool {
	named := recvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "os" && named.Obj().Name() == "File"
}

// receiverName renders the receiver as pkg.Type for diagnostics.
func receiverName(fn *types.Func) string {
	named := recvNamed(fn)
	parts := strings.Split(named.Obj().Pkg().Path(), "/")
	return parts[len(parts)-1] + "." + named.Obj().Name()
}

// isNamed reports whether t is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
