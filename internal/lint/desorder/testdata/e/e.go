// Package e exercises the desorder analyzer: event-handler callbacks must
// not spawn goroutines, touch channels, sleep, or write package globals.
package e

import "time"

// sched mimics the des.Simulator scheduling surface.
type sched struct{ now float64 }

func (s *sched) Schedule(t float64, fire func()) error { fire(); _ = t; return nil }
func (s *sched) After(d float64, fire func()) error    { fire(); _ = d; return nil }

// Event mimics des.Event.
type Event struct {
	Time float64
	Fire func()
}

var totalFired int // package-level state a handler must not touch

var results = make(chan int, 1)

func badLiteral(s *sched) {
	_ = s.Schedule(1, func() {
		go drain()              // want `goroutine spawned inside a DES event handler`
		results <- 1            // want `channel send inside a DES event handler`
		<-results               // want `channel receive inside a DES event handler`
		time.Sleep(time.Second) // want `time.Sleep inside a DES event handler`
		totalFired++            // want `write to package-level variable totalFired`
	})
}

func badSelect(s *sched) {
	_ = s.After(1, func() {
		select { // want `select inside a DES event handler`
		case <-results: // the receive below the select keyword is part of it
		default:
		}
	})
}

func badClosureVar(s *sched) {
	var tick func()
	tick = func() {
		totalFired = 3 // want `write to package-level variable totalFired`
		_ = s.After(1, tick)
	}
	_ = s.Schedule(0, tick)
}

func badFireField() {
	ev := Event{Time: 1, Fire: func() {
		for range results { // want `range over a channel inside a DES event handler`
		}
	}}
	ev.Fire = func() {
		_ = time.After(time.Second) // want `time.After inside a DES event handler`
	}
	_ = ev
}

func drain() {}

// goodHandler mutates only captured locals and schedules follow-up events —
// the sanctioned shape.
func goodHandler(s *sched) float64 {
	var acc float64
	var next func()
	next = func() {
		acc += s.now
		_ = s.After(1, next)
	}
	_ = s.Schedule(0, next)
	return acc
}

// goodOutside uses channels outside any handler (a parallel sweep harness is
// legitimate); only handler bodies are constrained.
func goodOutside() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
	totalFired++
}
