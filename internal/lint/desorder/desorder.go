// Package desorder defines an analyzer that keeps discrete-event simulation
// callbacks deterministic. The des kernel replays a run bit-exactly from a
// seed only if every event handler is a pure function of scheduler state:
// a goroutine spawned inside a handler, a channel handoff, a wall-clock
// sleep, or a write to a package-level variable makes event outcomes depend
// on OS scheduling and process history, silently invalidating the
// paired-seed AP-vs-β comparisons the evaluation rests on.
package desorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fafnet/internal/lint"
)

// Analyzer forbids nondeterministic constructs inside DES event handlers.
var Analyzer = &lint.Analyzer{
	Name: "desorder",
	Doc: `forbid goroutines, channel ops, sleeps and global writes in DES event handlers

Inside internal/des, internal/sim, internal/packetsim and internal/tokenring,
any function scheduled as an event callback — passed to Schedule/After or
stored in an Event's Fire field, directly or through a local closure
variable — must mutate simulator state only through scheduler-owned
structures. The analyzer reports go statements, channel sends/receives,
select statements, ranges over channels, time.Sleep/After/Tick/Timer/Ticker
calls, and assignments to package-level variables, anywhere inside a handler
body (including nested literals).`,
	Run: run,
}

// scopes are the package-path prefixes the determinism rule covers.
var scopes = []string{
	"fafnet/internal/des",
	"fafnet/internal/sim",
	"fafnet/internal/packetsim",
	"fafnet/internal/tokenring",
}

// schedulerEntry names the methods/functions whose function-typed arguments
// become event handlers.
var schedulerEntry = map[string]bool{
	"Schedule": true,
	"After":    true,
}

// bannedTime are time-package functions that smuggle wall-clock waits or
// timers into simulated time.
var bannedTime = map[string]bool{
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *lint.Pass) error {
	p := pass.Pkg.Path()
	inScope := false
	for _, s := range scopes {
		if p == s || strings.HasPrefix(p, s+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	c := &checker{pass: pass}
	c.collectDefinitions()
	c.collectHandlers()
	c.checkHandlers()
	return nil
}

type checker struct {
	pass *lint.Pass

	// funcDecls maps declared functions to their bodies; closureLits maps
	// local function variables to every literal assigned to them — both are
	// how a named handler (`tick`, `period`) resolves to code.
	funcDecls   map[*types.Func]*ast.BlockStmt
	closureLits map[types.Object][]*ast.FuncLit

	// handlers are the distinct event-handler bodies to inspect.
	handlers []*ast.BlockStmt
	seen     map[*ast.BlockStmt]bool
}

func (c *checker) collectDefinitions() {
	c.funcDecls = make(map[*types.Func]*ast.BlockStmt)
	c.closureLits = make(map[types.Object][]*ast.FuncLit)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if fn, ok := c.pass.TypesInfo.Defs[n.Name].(*types.Func); ok && n.Body != nil {
					c.funcDecls[fn] = n.Body
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, lhs := range n.Lhs {
					lit, ok := n.Rhs[i].(*ast.FuncLit)
					if !ok {
						continue
					}
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					obj := c.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = c.pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						c.closureLits[obj] = append(c.closureLits[obj], lit)
					}
				}
			}
			return true
		})
	}
}

func (c *checker) collectHandlers() {
	c.seen = make(map[*ast.BlockStmt]bool)
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				var name string
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					name = fun.Name
				case *ast.SelectorExpr:
					name = fun.Sel.Name
				}
				if !schedulerEntry[name] {
					return true
				}
				for _, arg := range n.Args {
					if _, ok := c.pass.TypesInfo.Types[arg].Type.Underlying().(*types.Signature); ok {
						c.addHandler(arg)
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Fire" {
							c.addHandler(kv.Value)
						}
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Fire" {
						c.addHandler(n.Rhs[i])
					}
				}
			}
			return true
		})
	}
}

// addHandler resolves one handler expression to its bodies: a literal's own
// body, every literal assigned to a local closure variable, or a declared
// function's body. Unresolvable expressions (a func-typed parameter) are
// skipped — the body is registered wherever it is visible.
func (c *checker) addHandler(x ast.Expr) {
	switch x := ast.Unparen(x).(type) {
	case *ast.FuncLit:
		c.addBody(x.Body)
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[x]
		if obj == nil {
			return
		}
		for _, lit := range c.closureLits[obj] {
			c.addBody(lit.Body)
		}
		if fn, ok := obj.(*types.Func); ok {
			c.addBody(c.funcDecls[fn])
		}
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[x.Sel].(*types.Func); ok {
			c.addBody(c.funcDecls[fn])
		}
	}
}

func (c *checker) addBody(body *ast.BlockStmt) {
	if body == nil || c.seen[body] {
		return
	}
	c.seen[body] = true
	c.handlers = append(c.handlers, body)
}

func (c *checker) checkHandlers() {
	for _, body := range c.handlers {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				c.pass.Report(n.Pos(), "goroutine spawned inside a DES event handler; handler outcomes must not depend on OS scheduling — do the work inline or schedule a future event")
			case *ast.SendStmt:
				c.pass.Report(n.Arrow, "channel send inside a DES event handler breaks seeded replay; route state through scheduler-owned structures")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					c.pass.Report(n.OpPos, "channel receive inside a DES event handler breaks seeded replay; route state through scheduler-owned structures")
				}
			case *ast.SelectStmt:
				c.pass.Report(n.Pos(), "select inside a DES event handler breaks seeded replay; event ordering belongs to the calendar, not the runtime")
				return false // the comm clauses' channel ops are part of this finding
			case *ast.RangeStmt:
				if t := c.pass.TypesInfo.Types[n.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						c.pass.Report(n.Pos(), "range over a channel inside a DES event handler breaks seeded replay; route state through scheduler-owned structures")
					}
				}
			case *ast.CallExpr:
				c.checkCall(n)
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					c.checkGlobalWrite(lhs)
				}
			case *ast.IncDecStmt:
				c.checkGlobalWrite(n.X)
			}
			return true
		})
	}
}

func (c *checker) checkCall(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return
	}
	if bannedTime[fn.Name()] {
		c.pass.Reportf(call.Pos(), "time.%s inside a DES event handler mixes wall-clock time into simulated time; schedule a future event on the calendar instead", fn.Name())
	}
}

// checkGlobalWrite reports assignments whose target is a package-level
// variable of the current package — mutable global state that survives
// across runs and breaks replay isolation.
func (c *checker) checkGlobalWrite(lhs ast.Expr) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() != c.pass.Pkg {
		return
	}
	if v.Parent() == c.pass.Pkg.Scope() {
		c.pass.Reportf(id.Pos(), "write to package-level variable %s inside a DES event handler; simulator state must live in scheduler-owned structures for seeded replay", v.Name())
	}
}
