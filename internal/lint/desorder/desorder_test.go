package desorder_test

import (
	"testing"

	"fafnet/internal/lint/desorder"
	"fafnet/internal/lint/linttest"
)

func TestDesorder(t *testing.T) {
	linttest.Run(t, desorder.Analyzer, "testdata/e", "fafnet/internal/des/linttestdata")
}

// TestOutOfScope checks that packages outside the simulator set may schedule
// whatever they like (the signaling server legitimately spawns per-connection
// goroutines).
func TestOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, desorder.Analyzer, "testdata/e", "fafnet/internal/signaling/linttestdata")
}
