// Package randsrc defines an analyzer that keeps the simulation packages
// replayable: every random draw must come from the seeded des.RNG, and
// simulation logic must never read the wall clock. A single global
// rand.Float64() or time.Now() breaks bit-exact replication of experiment
// runs (internal/sim replays scenarios by seed) and invalidates the
// paired-seed comparisons the evaluation rests on.
package randsrc

import (
	"go/types"
	"strings"

	"fafnet/internal/lint"
)

// Analyzer forbids unseeded randomness and wall-clock reads in simulators.
var Analyzer = &lint.Analyzer{
	Name: "randsrc",
	Doc: `forbid global math/rand and time.Now in simulation packages

Inside internal/des, internal/sim, internal/packetsim, internal/atm and
internal/fddi, every variate must be drawn from a seeded des.RNG and
simulation time must come from the DES clock (Simulator.Now). The analyzer
reports any use of math/rand package-level functions (except the New*
constructors, which build seeded generators) and any use of time.Now.`,
	Run: run,
}

// scopes are the package-path prefixes the determinism rule covers.
var scopes = []string{
	"fafnet/internal/des",
	"fafnet/internal/sim",
	"fafnet/internal/packetsim",
	"fafnet/internal/atm",
	"fafnet/internal/fddi",
}

// allowedRand are math/rand package-level constructors that produce a
// generator from an explicit seed — the only sanctioned way in.
var allowedRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	inScope := false
	for _, s := range scopes {
		p := pass.Pkg.Path()
		if p == s || strings.HasPrefix(p, s+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods on an explicit generator instance are fine
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if !allowedRand[fn.Name()] {
				pass.Reportf(id.Pos(), "global %s.%s breaks seeded replay; draw from a des.RNG", pathBase(fn.Pkg().Path()), fn.Name())
			}
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(id.Pos(), "time.%s reads the wall clock in a simulation package; use the DES clock (Simulator.Now)", fn.Name())
			}
		}
	}
	return nil
}

func pathBase(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}
