package randsrc_test

import (
	"testing"

	"fafnet/internal/lint/linttest"
	"fafnet/internal/lint/randsrc"
)

func TestRandsrc(t *testing.T) {
	linttest.Run(t, randsrc.Analyzer, "testdata/d", "fafnet/internal/des/linttestdata")
}

// TestOutOfScope checks that packages outside the simulation set may use the
// wall clock (the signaling server legitimately measures real time).
func TestOutOfScope(t *testing.T) {
	linttest.RunExpectNone(t, randsrc.Analyzer, "testdata/d", "fafnet/internal/signaling/linttestdata")
}
