// Package d exercises the randsrc analyzer: global math/rand draws and wall
// clock reads are flagged inside simulation packages; seeded constructors
// and instance methods stay silent.
package d

import (
	"math/rand"
	"time"
)

func bad() {
	_ = rand.Float64() // want `global rand.Float64 breaks seeded replay`
	_ = rand.Intn(4)   // want `global rand.Intn breaks seeded replay`
	_ = time.Now()     // want `time.Now reads the wall clock`
	_ = time.Since     // want `time.Since reads the wall clock`
}

func good() time.Duration {
	r := rand.New(rand.NewSource(42)) // seeded constructor: the sanctioned way in
	_ = r.Float64()                   // method on an explicit generator
	_ = r.Perm(4)
	return 3 * time.Second // time arithmetic without the wall clock is fine
}
