// Package facts defines the serialized fact files that carry analyzer
// results across package boundaries, mirroring the golang.org/x/tools
// unitchecker facts protocol: when the go command vets a package it hands the
// tool one fact file per dependency (Config.PackageVetx) and a path to write
// this package's own facts (Config.VetxOutput). Facts make interprocedural
// analyses — flowdims propagating unit dimensions through exported function
// signatures — work under the ordinary `go vet -vettool` driver with no
// whole-program loading.
//
// A fact file is a single JSON object: analyzer name → fact key → raw JSON
// fact value. encoding/json marshals map keys in sorted order, so encoding is
// deterministic and fact files are byte-stable across runs — a requirement
// for the go command's content-addressed action cache.
package facts

import (
	"encoding/json"
	"fmt"
)

// File is the decoded content of one package's fact file: analyzer name →
// fact key → raw encoded fact. Keys are analyzer-defined (flowdims uses
// "Func", "Type.Method" and "Type.Field" object paths).
type File map[string]map[string]json.RawMessage

// Decode parses a fact file. Empty input (the placeholder written for
// packages with no facts, e.g. the standard library) decodes to an empty,
// usable File.
func Decode(data []byte) (File, error) {
	if len(data) == 0 {
		return File{}, nil
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("facts: decoding fact file: %w", err)
	}
	if f == nil {
		f = File{}
	}
	return f, nil
}

// Encode serializes a fact file deterministically. A nil or empty File
// encodes to an empty byte slice, so packages without facts keep the
// zero-length placeholder file the protocol always writes.
func Encode(f File) ([]byte, error) {
	if len(f) == 0 {
		return nil, nil
	}
	data, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("facts: encoding fact file: %w", err)
	}
	return data, nil
}

// Set records one fact under (analyzer, key), replacing any previous value.
func (f File) Set(analyzer, key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("facts: encoding fact %s/%s: %w", analyzer, key, err)
	}
	m := f[analyzer]
	if m == nil {
		m = make(map[string]json.RawMessage)
		f[analyzer] = m
	}
	m[key] = raw
	return nil
}

// Get decodes the fact stored under (analyzer, key) into out and reports
// whether it was present.
func (f File) Get(analyzer, key string, out any) bool {
	m, ok := f[analyzer]
	if !ok {
		return false
	}
	raw, ok := m[key]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}
