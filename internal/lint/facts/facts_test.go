package facts

import (
	"bytes"
	"testing"
)

type payload struct {
	T int8 `json:"t"`
	B int8 `json:"b"`
}

func TestRoundTrip(t *testing.T) {
	f := make(File)
	if err := f.Set("flowdims", "Span", payload{T: 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("flowdims", "Volume", payload{B: 1}); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	var p payload
	if !g.Get("flowdims", "Span", &p) || p.T != 1 {
		t.Errorf("Span fact did not survive the round trip: %+v", p)
	}
	if g.Get("flowdims", "Missing", &p) {
		t.Error("Get reported a fact that was never set")
	}
	if g.Get("otherpass", "Span", &p) {
		t.Error("Get crossed analyzer namespaces")
	}
}

// TestEncodeDeterministic matters because the go command caches fact files
// by content: nondeterministic bytes would defeat the cache.
func TestEncodeDeterministic(t *testing.T) {
	build := func(order []string) []byte {
		f := make(File)
		for _, k := range order {
			if err := f.Set("flowdims", k, payload{T: 1}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := build([]string{"A", "B", "C"})
	b := build([]string{"C", "A", "B"})
	if !bytes.Equal(a, b) {
		t.Errorf("encoding depends on insertion order:\n%s\nvs\n%s", a, b)
	}
}

func TestEmpty(t *testing.T) {
	f, err := Decode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 0 {
		t.Errorf("decoding empty input produced %d entries", len(f))
	}
	data, err := Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("encoding an empty file produced %q, want no bytes", data)
	}
}
