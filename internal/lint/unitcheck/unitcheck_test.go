package unitcheck_test

import (
	"testing"

	"fafnet/internal/lint/linttest"
	"fafnet/internal/lint/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	linttest.Run(t, unitcheck.Analyzer, "testdata/a", "fafnet/internal/linttestdata/a")
}
