// Package a exercises the unitcheck analyzer: true positives for
// cross-dimension arithmetic and deliberate near-misses that must stay
// silent.
package a

import "math"

func needBits(payloadBits float64) float64 { return payloadBits }

func positives(totalDelay, frameBits, linkRate, peakRate float64) {
	_ = totalDelay + frameBits  // want `cross-dimension addition: seconds \+ bits`
	_ = linkRate * peakRate     // want `suspicious product dimension`
	_ = totalDelay <= frameBits // want `cross-dimension comparison`
	_ = needBits(totalDelay)    // want `argument is seconds but parameter "payloadBits"`

	var queueDelay float64
	queueDelay = frameBits // want `bits value stored in "queueDelay"`
	_ = queueDelay
}

type config struct {
	HopLatency float64
}

func positiveComposite(burstBits float64) config {
	return config{HopLatency: burstBits} // want `bits value stored in "HopLatency"`
}

func negatives(txDelay, frameBits, linkRate float64, n int) {
	_ = txDelay + frameBits/linkRate // bits/bps is seconds: consistent
	_ = linkRate * txDelay           // bps*seconds is bits: sanctioned
	_ = txDelay * 2                  // scalar scaling preserves the dimension
	_ = frameBits / float64(n)       // unknown divisor: stay silent
	_ = math.Max(txDelay, 0)         // dimension-preserving helper
	total := txDelay + 1e-9          // additive tolerance rides along
	_ = total
	h := 0.004            // terse locals have no declared dimension
	_ = h * frameBits     // unknown operand: stay silent
	_ = txDelay - 2e-3    // literal operands are scalars
	_ = frameBits * 2 / 8 // scalar chain keeps bits
}
