// Package unitcheck defines an analyzer that enforces the dimensional
// conventions of internal/units: every float64 in this repository is seconds,
// bits, or bits-per-second, declared through its name. The analyzer infers
// dimensions with internal/lint/dims and reports arithmetic that mixes them.
package unitcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"fafnet/internal/lint"
	"fafnet/internal/lint/dims"
)

// Analyzer flags cross-dimension arithmetic on float64 quantities.
var Analyzer = &lint.Analyzer{
	Name: "unitcheck",
	Doc: `check dimensional consistency of float64 seconds/bits/bps quantities

Dimensions are inferred from identifier names per the internal/units
conventions (Delay, TTRT, Latency → seconds; *Bits, *Kbit → bits; *Bps,
*Rate, Bandwidth* → bits/second). The analyzer reports additions,
subtractions and comparisons between different dimensions, products and
quotients whose result is not a sanctioned dimension (seconds², rate²,
bit-seconds), assignments of one dimension to a name declaring another, and
call arguments whose dimension contradicts the parameter name.`,
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ValueSpec:
				checkValueSpec(pass, n)
			case *ast.CompositeLit:
				checkCompositeLit(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkBinary(pass *lint.Pass, e *ast.BinaryExpr) {
	info := pass.TypesInfo
	switch e.Op {
	case token.ADD, token.SUB,
		token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		ld, lk := dims.OfExpr(info, e.X)
		rd, rk := dims.OfExpr(info, e.Y)
		if lk == dims.Physical && rk == dims.Physical && ld != rd {
			pass.Reportf(e.OpPos, "cross-dimension %s: %s %s %s", describeOp(e.Op), ld, e.Op, rd)
		}
	case token.MUL, token.QUO:
		d, k := dims.OfExpr(info, e)
		if k == dims.Physical && !d.Recognized() {
			pass.Reportf(e.OpPos, "suspicious product dimension %s (operands %s and %s)", d, fmtOperand(info, e.X), fmtOperand(info, e.Y))
		}
	}
}

func describeOp(op token.Token) string {
	switch op {
	case token.ADD:
		return "addition"
	case token.SUB:
		return "subtraction"
	default:
		return "comparison"
	}
}

func fmtOperand(info *types.Info, e ast.Expr) string {
	d, k := dims.OfExpr(info, e)
	if k == dims.Physical {
		return d.String()
	}
	return "dimensionless"
}

// checkCall compares each float argument's inferred dimension against the
// dimension declared by the callee's parameter name.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	var callee *types.Func
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fn].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fn.Sel].(*types.Func)
	}
	if callee == nil {
		return
	}
	sig, ok := callee.Type().(*types.Signature)
	if ok && sig.Variadic() {
		return // variadic tails (MergeGrids, Printf) carry no per-param names
	}
	if !ok || sig.Params().Len() != len(call.Args) {
		return
	}
	for i, arg := range call.Args {
		param := sig.Params().At(i)
		pd, pok := dims.FromName(param.Name())
		if !pok {
			continue
		}
		ad, ak := dims.OfExpr(info, arg)
		if ak == dims.Physical && ad != pd {
			pass.Reportf(arg.Pos(), "argument is %s but parameter %q of %s wants %s", ad, param.Name(), callee.Name(), pd)
		}
	}
}

// checkAssign compares the dimension declared by each assigned name against
// the dimension of the corresponding value.
func checkAssign(pass *lint.Pass, s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		reportStore(pass, lhs, s.Rhs[i])
	}
}

func checkValueSpec(pass *lint.Pass, s *ast.ValueSpec) {
	if len(s.Names) != len(s.Values) {
		return
	}
	for i, name := range s.Names {
		reportStore(pass, name, s.Values[i])
	}
}

// checkCompositeLit checks keyed struct-literal fields: Field: value.
func checkCompositeLit(pass *lint.Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		reportStore(pass, key, kv.Value)
	}
}

// reportStore flags a value of one dimension stored under a name that
// declares another.
func reportStore(pass *lint.Pass, dst, src ast.Expr) {
	var name string
	switch dst := dst.(type) {
	case *ast.Ident:
		name = dst.Name
	case *ast.SelectorExpr:
		name = dst.Sel.Name
	default:
		return
	}
	dd, dok := dims.FromName(name)
	if !dok {
		return
	}
	sd, sk := dims.OfExpr(pass.TypesInfo, src)
	if sk == dims.Physical && sd != dd {
		pass.Reportf(src.Pos(), "%s value stored in %q, which is declared %s by name", sd, name, dd)
	}
}
