package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{Title: "AP vs beta", Width: 40, Height: 10, XLabel: "beta"}
	out := c.Render([]Series{
		{Label: "U=0.3", X: []float64{0, 0.5, 1}, Y: []float64{0.7, 0.9, 0.66}},
		{Label: "U=0.9", X: []float64{0, 0.5, 1}, Y: []float64{0.36, 0.62, 0.34}},
	})
	if !strings.Contains(out, "AP vs beta") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "U=0.3") || !strings.Contains(out, "U=0.9") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing series markers")
	}
	if !strings.Contains(out, "beta") {
		t.Error("missing x label")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 13 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{}.Render(nil)
	if out != "(no data)\n" {
		t.Errorf("empty chart = %q", out)
	}
	out = Chart{}.Render([]Series{{Label: "nan", X: []float64{1}, Y: []float64{math.NaN()}}})
	if out != "(no data)\n" {
		t.Errorf("all-NaN chart = %q", out)
	}
}

func TestRenderFixedScale(t *testing.T) {
	c := Chart{Width: 20, Height: 5, YFixed: true, YMin: 0, YMax: 1}
	out := c.Render([]Series{{Label: "s", X: []float64{0, 1}, Y: []float64{0.5, 0.5}}})
	if !strings.Contains(out, "1 |") {
		t.Errorf("fixed top scale missing:\n%s", out)
	}
	if !strings.Contains(out, "0 |") {
		t.Errorf("fixed bottom scale missing:\n%s", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := Chart{Width: 10, Height: 4}.Render([]Series{{Label: "p", X: []float64{2}, Y: []float64{3}}})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not drawn:\n%s", out)
	}
}

func TestRenderConnectsPoints(t *testing.T) {
	// A steep two-point series should leave interpolation dots.
	out := Chart{Width: 30, Height: 10}.Render([]Series{
		{Label: "s", X: []float64{0, 1}, Y: []float64{0, 1}},
	})
	if !strings.Contains(out, ".") {
		t.Errorf("no connecting line drawn:\n%s", out)
	}
}

func TestRenderSkipsNaNSegments(t *testing.T) {
	out := Chart{Width: 30, Height: 8}.Render([]Series{
		{Label: "s", X: []float64{0, 0.5, 1}, Y: []float64{0.2, math.NaN(), 0.8}},
	})
	if strings.Count(out, "*") < 2 {
		t.Errorf("NaN point swallowed neighbors:\n%s", out)
	}
}
