// Package plot renders small ASCII line charts for the command-line tools,
// so the reproduced figures can be eyeballed directly in a terminal next to
// the numeric tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// markers distinguish series in the chart body.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series into a width×height character grid with axis
// annotations. The y-axis always spans [yMin, yMax] when provided via
// options; by default it spans the data (padded).
type Chart struct {
	Title      string
	Width      int // plot area columns (default 60)
	Height     int // plot area rows (default 16)
	YMin, YMax float64
	YFixed     bool // use YMin/YMax instead of auto-scaling
	XLabel     string
	YLabel     string
}

// Render draws the chart with the given series.
func (c Chart) Render(series []Series) string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if c.YFixed {
		yMin, yMax = c.YMin, c.YMax
	} else {
		pad := (yMax - yMin) * 0.05
		if pad == 0 {
			pad = math.Max(math.Abs(yMax)*0.05, 0.05)
		}
		yMin -= pad
		yMax += pad
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		return int(math.Round((x - xMin) / (xMax - xMin) * float64(w-1)))
	}
	row := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(h-1)))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		var prevC, prevR int
		havePrev := false
		for i := range s.X {
			if i >= len(s.Y) || math.IsNaN(s.Y[i]) {
				havePrev = false
				continue
			}
			cc, rr := col(s.X[i]), row(s.Y[i])
			if havePrev {
				drawLine(grid, prevC, prevR, cc, rr, '.')
			}
			grid[rr][cc] = m
			prevC, prevR = cc, rr
			havePrev = true
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	for r := 0; r < h; r++ {
		yVal := yMax - (yMax-yMin)*float64(r)/float64(h-1)
		label := "        |"
		if r == 0 || r == h-1 || r == h/2 {
			label = fmt.Sprintf("%7.3g |", yVal)
		}
		b.WriteString(label)
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString("        +" + strings.Repeat("-", w) + "\n")
	b.WriteString(fmt.Sprintf("        %-8.3g%s%8.3g\n", xMin, centerText(c.XLabel, w-16), xMax))
	for si, s := range series {
		b.WriteString(fmt.Sprintf("        %c %s\n", markers[si%len(markers)], s.Label))
	}
	return b.String()
}

// drawLine connects two grid cells with a Bresenham walk using the given
// fill byte, leaving existing markers intact.
func drawLine(grid [][]byte, x0, y0, x1, y1 int, fill byte) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	x, y := x0, y0
	for {
		if y >= 0 && y < len(grid) && x >= 0 && x < len(grid[y]) && grid[y][x] == ' ' {
			grid[y][x] = fill
		}
		if x == x1 && y == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func centerText(s string, width int) string {
	if width < len(s) {
		return s
	}
	left := (width - len(s)) / 2
	return strings.Repeat(" ", left) + s + strings.Repeat(" ", width-left-len(s))
}
