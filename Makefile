# Developer entry points. `make check` is the full pre-merge gate.

GO      ?= go
FAFVET  := bin/fafvet

.PHONY: all build fmt vet race test short check clean

all: build

build:
	$(GO) build ./...

# gofmt -l prints unformatted files; fail when any exist.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

$(FAFVET): FORCE
	$(GO) build -o $(FAFVET) ./cmd/fafvet
FORCE:

# Standard vet plus this repository's analyzer suite (unitcheck, floatcmp,
# epslit, randsrc — see README "Static analysis & unit conventions").
vet: $(FAFVET)
	$(GO) vet ./...
	$(GO) vet -vettool=$(CURDIR)/$(FAFVET) ./...

race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

check: build fmt vet race test

clean:
	rm -rf bin
