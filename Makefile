# Developer entry points. `make check` is the full pre-merge gate.

GO       ?= go
FAFVET   := bin/fafvet
FAFBENCH := bin/fafbench

# bench knobs: subset selector, per-benchmark time budget, output file.
#   make bench BENCH='CACAdmit|DelayAnalysis' BENCHTIME=3s BENCH_JSON=BENCH.json
BENCH      ?= .
BENCHTIME  ?= 1s
BENCH_JSON ?= BENCH.json

# bench-compare baseline: the JSON report committed with the most recent
# performance PR.
BENCH_BASELINE ?= BENCH_PR8.json

# calibrate knobs: scenario count and base seed for the randomized sweep.
CAL_SCENARIOS ?= 100
CAL_SEED      ?= 1

.PHONY: all build fmt vet sarif lockgraph lockgraph-check race test short bench bench-compare chaos load-smoke calibrate docs-check check clean

all: build

build:
	$(GO) build ./...

# gofmt -l prints unformatted files; fail when any exist.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

$(FAFVET): FORCE
	$(GO) build -o $(FAFVET) ./cmd/fafvet
FORCE:

# Standard vet plus this repository's analyzer suite (unitcheck, floatcmp,
# epslit, randsrc, flowdims, desorder, lockorder, guardedby, golife,
# errdrop, hotpath, atomicvisit — see README "Static analysis & unit
# conventions"). fafvet's
# driver mode re-invokes go vet against itself, aggregates diagnostics
# across packages, and applies the committed baseline of intended findings.
vet: $(FAFVET)
	$(GO) vet ./...
	./$(FAFVET) -baseline=.fafvet-baseline.json ./...

# SARIF 2.1.0 report for GitHub code scanning / CI artifacts. Exit 2 means
# findings, which the vet target gates; only operational errors fail here.
sarif: $(FAFVET)
	@./$(FAFVET) -format=sarif -baseline=.fafvet-baseline.json -o fafvet.sarif ./...; \
	ec=$$?; if [ $$ec -ne 0 ] && [ $$ec -ne 2 ]; then exit $$ec; fi
	@echo "wrote fafvet.sarif"

# Whole-program lock graph: lockorder's cross-package acquisition edges as
# Graphviz, with cycle edges drawn red. The committed LOCKGRAPH.dot is the
# figure DESIGN.md §4 references — regenerate after changing any locking.
lockgraph: $(FAFVET)
	./$(FAFVET) -format=dot -baseline=.fafvet-baseline.json -o LOCKGRAPH.dot ./...
	@echo "wrote LOCKGRAPH.dot"

# Freshness gate for the committed lock graph: regenerate it and fail if the
# working tree changes, i.e. someone altered locking without re-running
# `make lockgraph`. CI runs this so DESIGN.md §4's figure can never go stale.
lockgraph-check: lockgraph
	git diff --exit-code LOCKGRAPH.dot

race:
	$(GO) test -race -short ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

# The fault-injection suite: the full seed × fault-profile chaos matrix over
# the signaling stack plus the faultnet package's own tests, under the race
# detector. `make race` already runs a -short slice of this; here the matrix
# runs in full.
chaos:
	$(GO) test -race -run 'TestChaos' -v ./internal/signaling/
	$(GO) test -race ./internal/faultnet/

# Throughput smoke for the sharded daemon: a short closed-loop batched-
# preview run against an in-process server must sustain a conservative
# decisions/sec floor and leave zero goroutines behind. The full acceptance
# methodology and the headline numbers live in EXPERIMENTS.md E10.
load-smoke:
	$(GO) test -run TestLoadSmoke -v ./cmd/fafsim/

# The calibration sweep (E11 in EXPERIMENTS.md): randomized multi-class
# scenarios, each admitted, trace-replayed for bit-identity, and cross-
# checked packet-by-packet against the analytic Eq. 7 bounds. Exits nonzero
# on any measured delay above its bound or any replay divergence.
#   make calibrate CAL_SCENARIOS=20 CAL_SEED=7
calibrate:
	$(GO) run ./cmd/fafsim -calibrate -scenarios $(CAL_SCENARIOS) -seed $(CAL_SEED)

$(FAFBENCH): FORCE
	$(GO) build -o $(FAFBENCH) ./cmd/fafbench

# Run the root-package benchmark suite with allocation stats and record the
# results as machine-readable JSON (name → ns/op, B/op, allocs/op, plus
# custom metrics such as AP) for before/after tracking. The raw `go test`
# output is kept in bench.out.
bench: $(FAFBENCH)
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -benchmem . | tee bench.out
	./$(FAFBENCH) -o $(BENCH_JSON) bench.out
	@echo "wrote $(BENCH_JSON)"

# Diff a fresh bench run against the committed baseline report. Defaults
# apply both gates (ns/op 1.25x, allocs/op 1.10x) — appropriate for
# interleaved runs on one quiet machine. CI loosens both because its
# runners are shared (the loose wall-clock gate still catches
# order-of-magnitude cache breakage):
#   make bench-compare FAFBENCH_COMPARE_FLAGS='-ns-ratio=4 -allocs-ratio=1.5'
# Add -format=markdown for a summary table (PR descriptions, job summaries).
bench-compare: $(FAFBENCH)
	./$(FAFBENCH) -compare $(FAFBENCH_COMPARE_FLAGS) $(BENCH_BASELINE) $(BENCH_JSON)

# Documentation gates: every exported identifier in internal/obs must carry
# a doc comment, OPERATIONS.md's metric catalog must match the names the
# packages actually register, and README's analyzer table must match the
# fafvet registry (all both directions). All are ordinary Go tests, named
# here so CI and reviewers can run just the docs gate.
docs-check:
	$(GO) test -run TestExportedIdentifiersDocumented ./internal/obs/
	$(GO) test -run TestOperationsCatalogMatchesRegistry .
	$(GO) test -run TestReadmeAnalyzerTableMatchesRegistry ./cmd/fafvet/

check: build fmt vet race test docs-check

clean:
	rm -rf bin
