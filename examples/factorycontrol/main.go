// Factorycontrol: an industrial cell-controller scenario. Sensor stations
// on one FDDI ring stream periodic measurements to a cell controller on
// another ring; the controller sends actuator commands back. Deadlines are
// tight (one control period). After admission, the example replays the
// declared traffic through the packet-level simulator and verifies that no
// measured delay exceeds the analytic worst case — the guarantee a plant
// operator actually relies on.
package main

import (
	"fmt"
	"log"

	"fafnet"
)

func main() {
	topology := fafnet.DefaultTopology()
	net, err := fafnet.NewNetwork(topology)
	if err != nil {
		log.Fatal(err)
	}
	// Control traffic must never miss: allocate generously (β = 0.8).
	cac, err := fafnet.NewController(net, fafnet.Options{Beta: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	// 20 kbit sensor scans every 10 ms (2 Mb/s), delivered within 25 ms.
	sensor, err := fafnet.NewPeriodic(20e3, 0.010, 100e6)
	if err != nil {
		log.Fatal(err)
	}
	// 4 kbit actuator commands every 5 ms, within 20 ms.
	actuator, err := fafnet.NewPeriodic(4e3, 0.005, 100e6)
	if err != nil {
		log.Fatal(err)
	}

	specs := []fafnet.ConnSpec{
		{ID: "sensor-1", Src: fafnet.HostID{Ring: 0, Index: 0}, Dst: fafnet.HostID{Ring: 1, Index: 0}, Source: sensor, Deadline: 0.025},
		{ID: "sensor-2", Src: fafnet.HostID{Ring: 0, Index: 1}, Dst: fafnet.HostID{Ring: 1, Index: 0}, Source: sensor, Deadline: 0.025},
		{ID: "sensor-3", Src: fafnet.HostID{Ring: 2, Index: 0}, Dst: fafnet.HostID{Ring: 1, Index: 0}, Source: sensor, Deadline: 0.025},
		{ID: "cmd-1", Src: fafnet.HostID{Ring: 1, Index: 1}, Dst: fafnet.HostID{Ring: 0, Index: 3}, Source: actuator, Deadline: 0.020},
		{ID: "cmd-2", Src: fafnet.HostID{Ring: 1, Index: 2}, Dst: fafnet.HostID{Ring: 2, Index: 3}, Source: actuator, Deadline: 0.020},
	}

	fmt.Println("admitting the control loops:")
	for _, spec := range specs {
		dec, err := cac.RequestAdmission(spec)
		if err != nil {
			log.Fatal(err)
		}
		if !dec.Admitted {
			fmt.Printf("  %-9s REJECTED: %s — the cell must be re-planned\n", spec.ID, dec.Reason)
			continue
		}
		fmt.Printf("  %-9s worst case %.2f ms of %.0f ms (H_S=%.2f ms, H_R=%.2f ms)\n",
			spec.ID, dec.Delays[spec.ID]*1e3, spec.Deadline*1e3, dec.HS*1e3, dec.HR*1e3)
	}

	fmt.Println("\nreplaying one second of plant traffic through the packet-level model:")
	res, err := fafnet.Validate(fafnet.ValidationConfig{
		Topology:    topology,
		Connections: cac.Connections(),
		Duration:    1.0,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.PerConn {
		status := "ok"
		if !c.WithinBound() {
			status = "BOUND VIOLATED"
		}
		fmt.Printf("  %-9s %4d frames, measured max %.3f ms <= bound %.3f ms  %s\n",
			c.ID, c.FramesDelivered, c.Delays.Max()*1e3, c.Bound*1e3, status)
	}
	if res.AllWithinBounds() {
		fmt.Println("\nevery control message met its analytic worst case — the cell is safe to run")
	} else {
		fmt.Println("\nBOUND VIOLATION — this would be a bug in the analysis")
	}
}
