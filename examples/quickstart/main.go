// Quickstart: build the paper's evaluation network, admit two real-time
// connections, and print the allocations and the per-server delay budget.
package main

import (
	"fmt"
	"log"

	"fafnet"
)

func main() {
	// The evaluation network of Section 6: three 100 Mb/s FDDI rings with
	// four hosts each, joined by three ATM switches on 155 Mb/s links.
	net, err := fafnet.NewNetwork(fafnet.DefaultTopology())
	if err != nil {
		log.Fatal(err)
	}

	// β = 0.5 allocates halfway between the minimum the deadlines need and
	// the maximum that still improves any delay (Eq. 35–36).
	cac, err := fafnet.NewController(net, fafnet.Options{Beta: 0.5})
	if err != nil {
		log.Fatal(err)
	}

	// A bursty video source: at most 50 kbit in any 10 ms and 10 kbit in
	// any 1 ms, transmitted at up to the 100 Mb/s medium rate (Eq. 37).
	video, err := fafnet.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		log.Fatal(err)
	}
	// A smooth 2 Mb/s audio mix.
	audio, err := fafnet.NewCBR(2e6)
	if err != nil {
		log.Fatal(err)
	}

	requests := []fafnet.ConnSpec{
		{
			ID:       "video-1",
			Src:      fafnet.HostID{Ring: 0, Index: 0},
			Dst:      fafnet.HostID{Ring: 1, Index: 0},
			Source:   video,
			Deadline: 0.050, // 50 ms end-to-end
		},
		{
			ID:       "audio-1",
			Src:      fafnet.HostID{Ring: 1, Index: 1},
			Dst:      fafnet.HostID{Ring: 2, Index: 0},
			Source:   audio,
			Deadline: 0.040,
		},
	}

	for _, spec := range requests {
		dec, err := cac.RequestAdmission(spec)
		if err != nil {
			log.Fatal(err)
		}
		if !dec.Admitted {
			fmt.Printf("%s: rejected (%s)\n", spec.ID, dec.Reason)
			continue
		}
		fmt.Printf("%s: admitted %v→%v\n", spec.ID, spec.Src, spec.Dst)
		fmt.Printf("  synchronous bandwidth: H_S=%.3f ms, H_R=%.3f ms (of %.3f/%.3f ms available)\n",
			dec.HS*1e3, dec.HR*1e3, dec.HSMaxAvail*1e3, dec.HRMaxAvail*1e3)
		fmt.Printf("  worst-case delay %.2f ms against a %.0f ms deadline\n",
			dec.Delays[spec.ID]*1e3, spec.Deadline*1e3)

		bd, err := cac.BreakdownFor(spec.ID)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget: sender MAC %.2f ms", bd.SrcMAC*1e3)
		for _, p := range bd.Ports {
			fmt.Printf(" + %s %.2f ms", p.Port, p.Delay*1e3)
		}
		fmt.Printf(" + receiver MAC %.2f ms + constant %.2f ms\n\n", bd.DstMAC*1e3, bd.Constant*1e3)
	}
}
