// Videoconf: a multi-site video conference across the FDDI-ATM-FDDI
// network. Each site contributes one bursty video stream and one audio
// stream toward another site. The example admits the whole conference at
// three different β settings and shows how the allocation knob trades the
// delay slack of admitted streams against room for late joiners — the
// tension Section 5.3 of the paper is about.
package main

import (
	"fmt"
	"log"

	"fafnet"
)

// stream describes one conference flow.
type stream struct {
	id       string
	src, dst fafnet.HostID
	video    bool
	deadline float64
}

func conference() []stream {
	return []stream{
		// Three sites (one ring each); each sends video+audio to the next.
		{"video-a", fafnet.HostID{Ring: 0, Index: 0}, fafnet.HostID{Ring: 1, Index: 0}, true, 0.045},
		{"audio-a", fafnet.HostID{Ring: 0, Index: 1}, fafnet.HostID{Ring: 1, Index: 1}, false, 0.035},
		{"video-b", fafnet.HostID{Ring: 1, Index: 2}, fafnet.HostID{Ring: 2, Index: 0}, true, 0.045},
		{"audio-b", fafnet.HostID{Ring: 1, Index: 3}, fafnet.HostID{Ring: 2, Index: 1}, false, 0.035},
		{"video-c", fafnet.HostID{Ring: 2, Index: 2}, fafnet.HostID{Ring: 0, Index: 2}, true, 0.045},
		{"audio-c", fafnet.HostID{Ring: 2, Index: 3}, fafnet.HostID{Ring: 0, Index: 3}, false, 0.035},
		// A late joiner on the busiest ring.
		{"video-late", fafnet.HostID{Ring: 0, Index: 2}, fafnet.HostID{Ring: 2, Index: 2}, true, 0.050},
	}
}

func main() {
	video, err := fafnet.NewDualPeriodic(60e3, 0.010, 12e3, 0.001, 100e6) // 6 Mb/s bursty
	if err != nil {
		log.Fatal(err)
	}
	audio, err := fafnet.NewPeriodic(2e3, 0.002, 100e6) // 1 Mb/s, 2 ms frames
	if err != nil {
		log.Fatal(err)
	}

	for _, beta := range []float64{0, 0.5, 1} {
		fmt.Printf("=== beta = %.1f ===\n", beta)
		net, err := fafnet.NewNetwork(fafnet.DefaultTopology())
		if err != nil {
			log.Fatal(err)
		}
		cac, err := fafnet.NewController(net, fafnet.Options{Beta: beta, BetaSet: true})
		if err != nil {
			log.Fatal(err)
		}

		admitted := 0
		var minSlack float64 = 1e9
		for _, s := range conference() {
			var src fafnet.Descriptor = audio
			if s.video {
				src = video
			}
			dec, err := cac.RequestAdmission(fafnet.ConnSpec{
				ID: s.id, Src: s.src, Dst: s.dst, Source: src, Deadline: s.deadline,
			})
			if err != nil {
				log.Fatal(err)
			}
			if !dec.Admitted {
				fmt.Printf("  %-10s REJECTED: %s\n", s.id, dec.Reason)
				continue
			}
			admitted++
			slack := s.deadline - dec.Delays[s.id]
			if slack < minSlack {
				minSlack = slack
			}
			fmt.Printf("  %-10s admitted: H_S=%.2fms H_R=%.2fms, slack %.1f ms\n",
				s.id, dec.HS*1e3, dec.HR*1e3, slack*1e3)
		}

		var ringUse float64
		for r := 0; r < net.NumRings(); r++ {
			ringUse += net.Ring(r).Allocated()
		}
		fmt.Printf("  summary: %d/7 admitted, tightest slack %.1f ms, total ring time used %.2f ms\n\n",
			admitted, minSlack*1e3, ringUse*1e3)
	}
	fmt.Println("beta=0 leaves streams with no slack (fragile to future joins);")
	fmt.Println("beta=1 burns ring bandwidth; intermediate beta balances both.")
}
