// Mixedlan: the Section 7 extension — legacy IEEE 802.5 token-ring
// segments in place of FDDI. The paper observes that the decomposition
// methodology carries over by swapping the MAC server analysis: the 802.5
// station holds the token for up to its THT once per bounded rotation, so
// Theorem 1 applies with (rotation target, THT) in place of (TTRT, H).
//
// This example hand-assembles the end-to-end budget of a connection that
// crosses a 16 Mb/s token ring, the ATM backbone, and a second token ring,
// and shows the THT trade-off at the sender.
package main

import (
	"fmt"
	"log"

	"fafnet"
	"fafnet/internal/atm"
	"fafnet/internal/ifdev"
	"fafnet/internal/traffic"
)

func main() {
	ringCfg := fafnet.DefaultTokenRingConfig() // 16 Mb/s, 8 ms rotation

	// A 1 Mb/s periodic control stream: 10 kbit every 10 ms.
	src, err := fafnet.NewPeriodic(10e3, 0.010, ringCfg.BandwidthBps)
	if err != nil {
		log.Fatal(err)
	}

	// Ring-level bookkeeping mirrors the FDDI case: ΣTHT + walk <= target.
	ring, err := fafnet.NewTokenRing(ringCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("802.5 segment: %.0f Mb/s, rotation target %.1f ms, %.2f ms grantable\n\n",
		ringCfg.BandwidthBps/1e6, ringCfg.TargetRotation*1e3, ring.Available()*1e3)

	fmt.Println("sender 802.5_MAC bound as the THT grows:")
	fmt.Printf("%8s %14s %14s\n", "THT(ms)", "delay(ms)", "backlog(kbit)")
	for _, tht := range []float64{0.8e-3, 1e-3, 1.5e-3, 2e-3, 3e-3} {
		res, err := fafnet.AnalyzeTokenRingMAC(src, fafnet.TokenRingMACParams{Ring: ringCfg, THT: tht}, fafnet.FDDIMACOptions{})
		if err != nil {
			fmt.Printf("%8.2f %14s %14s\n", tht*1e3, "unbounded", "-")
			continue
		}
		fmt.Printf("%8.2f %14.2f %14.2f\n", tht*1e3, res.Delay*1e3, res.BufferBits/1e3)
	}

	// End-to-end: sender 802.5_MAC → interface device (Theorem 2) → ATM
	// output port → reassembly → receiver 802.5_MAC, plus constant stages.
	const tht = 2e-3
	sender, err := fafnet.AnalyzeTokenRingMAC(src, fafnet.TokenRingMACParams{Ring: ringCfg, THT: tht}, fafnet.FDDIMACOptions{})
	if err != nil {
		log.Fatal(err)
	}
	idParams := ifdev.DefaultParams()
	frameBits := tht * ringCfg.BandwidthBps // F_S = THT·BW, as in the FDDI case
	converted, err := ifdev.SenderConversion(sender.Output, frameBits, idParams)
	if err != nil {
		log.Fatal(err)
	}

	// The ATM port also carries two competing legacy streams.
	competitor, err := traffic.NewLeakyBucket(20e3, 3e6, 16e6)
	if err != nil {
		log.Fatal(err)
	}
	mux, err := atm.AnalyzeMux(
		[]traffic.Descriptor{converted, competitor, competitor},
		atm.MuxParams{CapacityBps: atm.PayloadCapacity(atm.DefaultLinkBps)},
		atm.MuxOptions{},
	)
	if err != nil {
		log.Fatal(err)
	}

	reassembled, err := ifdev.ReceiverConversion(mux.Outputs[0], frameBits, idParams)
	if err != nil {
		log.Fatal(err)
	}
	receiver, err := fafnet.AnalyzeTokenRingMAC(reassembled, fafnet.TokenRingMACParams{Ring: ringCfg, THT: tht}, fafnet.FDDIMACOptions{})
	if err != nil {
		log.Fatal(err)
	}

	constant := idParams.SenderConstantDelay() + idParams.ReceiverConstantDelay() + 3*10e-6
	total := sender.Delay + mux.Delay + receiver.Delay + constant
	fmt.Printf("\nend-to-end worst case at THT = %.1f ms:\n", tht*1e3)
	fmt.Printf("  802.5_MAC (send)  %8.2f ms\n", sender.Delay*1e3)
	fmt.Printf("  ATM output port   %8.3f ms\n", mux.Delay*1e3)
	fmt.Printf("  802.5_MAC (recv)  %8.2f ms\n", receiver.Delay*1e3)
	fmt.Printf("  constant stages   %8.3f ms\n", constant*1e3)
	fmt.Printf("  total             %8.2f ms\n", total*1e3)

	integrated(ringCfg)
}

// integrated runs the same idea through the full admission controller: a
// heterogeneous topology whose third segment is the 802.5 ring, so the CAC
// allocates THT there and TTRT-synchronous time on the FDDI segments.
func integrated(tr fafnet.TokenRingConfig) {
	topoCfg := fafnet.DefaultTopology()
	topoCfg.Rings = []fafnet.RingHardware{topoCfg.Ring, topoCfg.Ring, tr.SimConfig()}

	net, err := fafnet.NewNetwork(topoCfg)
	if err != nil {
		log.Fatal(err)
	}
	cac, err := fafnet.NewController(net, fafnet.Options{Beta: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	src, err := fafnet.NewDualPeriodic(20e3, 0.010, 4e3, 0.001, 16e6)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nintegrated CAC over the mixed FDDI/FDDI/802.5 network:")
	for _, req := range []struct {
		id         string
		srcR, srcH int
		dstR, dstH int
	}{
		{"fddi→802.5", 0, 0, 2, 0},
		{"802.5→fddi", 2, 1, 1, 0},
	} {
		dec, err := cac.RequestAdmission(fafnet.ConnSpec{
			ID:       req.id,
			Src:      fafnet.HostID{Ring: req.srcR, Index: req.srcH},
			Dst:      fafnet.HostID{Ring: req.dstR, Index: req.dstH},
			Source:   src,
			Deadline: 0.120,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !dec.Admitted {
			fmt.Printf("  %-12s REJECTED: %s\n", req.id, dec.Reason)
			continue
		}
		fmt.Printf("  %-12s H_S=%.2f ms, H_R=%.2f ms, worst case %.1f ms\n",
			req.id, dec.HS*1e3, dec.HR*1e3, dec.Delays[req.id]*1e3)
	}
}
