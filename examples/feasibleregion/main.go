// Feasibleregion renders the paper's Figure 6: the set of feasible
// allocations (H_S, H_R) for a new connection on the H_S–H_R plane, probed
// point by point with the real analysis. Theorems 3–4 say the region is
// closed and convex — a rectangle whose lower-left boundary is carved out by
// the deadline constraints — and the CAC's chosen points (min_need, the
// β-interpolated allocation, max_need) all lie on the proportional line ζ.
package main

import (
	"fmt"
	"log"

	"fafnet"
)

func main() {
	net, err := fafnet.NewNetwork(fafnet.DefaultTopology())
	if err != nil {
		log.Fatal(err)
	}
	cac, err := fafnet.NewController(net, fafnet.Options{Beta: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	src, err := fafnet.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		log.Fatal(err)
	}

	// Preload two competitors so the region has a nontrivial boundary.
	for i, pair := range [][4]int{{0, 1, 1, 1}, {1, 2, 0, 2}} {
		dec, err := cac.RequestAdmission(fafnet.ConnSpec{
			ID:     fmt.Sprintf("bg-%d", i),
			Src:    fafnet.HostID{Ring: pair[0], Index: pair[1]},
			Dst:    fafnet.HostID{Ring: pair[2], Index: pair[3]},
			Source: src, Deadline: 0.032,
		})
		if err != nil || !dec.Admitted {
			log.Fatalf("background admission failed: %v %v", err, dec.Reason)
		}
	}

	probe := fafnet.ConnSpec{
		ID:       "probe",
		Src:      fafnet.HostID{Ring: 0, Index: 0},
		Dst:      fafnet.HostID{Ring: 1, Index: 0},
		Source:   src,
		Deadline: 0.030, // tight: the deadline boundary becomes visible
	}

	hsMax := net.Ring(0).Available()
	hrMax := net.Ring(1).Available()
	fmt.Printf("probing the H_S–H_R plane for %q (deadline %.0f ms)\n", probe.ID, probe.Deadline*1e3)
	fmt.Printf("available: H_S <= %.2f ms, H_R <= %.2f ms\n\n", hsMax*1e3, hrMax*1e3)

	const cells = 24
	fmt.Println("  H_R (ms)  ('#' feasible, '.' infeasible; rows top to bottom = high to low H_R)")
	for row := cells; row >= 1; row-- {
		hr := hrMax * float64(row) / cells
		fmt.Printf("  %6.2f  ", hr*1e3)
		for col := 1; col <= cells; col++ {
			hs := hsMax * float64(col) / cells
			ok, err := cac.FeasibleAllocation(probe, hs, hr)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Print("#")
			} else {
				fmt.Print(".")
			}
		}
		fmt.Println()
	}
	fmt.Printf("          %s\n", ticks(cells))
	fmt.Printf("          H_S from %.2f to %.2f ms\n\n", hsMax/cells*1e3, hsMax*1e3)

	dec, err := cac.RequestAdmission(probe)
	if err != nil {
		log.Fatal(err)
	}
	if !dec.Admitted {
		fmt.Println("probe rejected:", dec.Reason)
		return
	}
	fmt.Println("the CAC's points on the proportional line ζ:")
	fmt.Printf("  min_need  (H_S, H_R) = (%.3f, %.3f) ms\n", dec.HSMinNeed*1e3, dec.HRMinNeed*1e3)
	fmt.Printf("  chosen β=0.5         = (%.3f, %.3f) ms\n", dec.HS*1e3, dec.HR*1e3)
	fmt.Printf("  max_need             = (%.3f, %.3f) ms\n", dec.HSMaxNeed*1e3, dec.HRMaxNeed*1e3)
	fmt.Printf("  max_avail            = (%.3f, %.3f) ms\n", dec.HSMaxAvail*1e3, dec.HRMaxAvail*1e3)
}

func ticks(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '-'
	}
	return string(s)
}
