package main

import (
	"testing"
	"time"

	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
)

func TestServeAndAdmit(t *testing.T) {
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- serve("127.0.0.1:0", 0.5, "proportional", ready) }()

	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("serve failed before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	client, err := signaling.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dec, err := client.Admit(scenario.Request{
		ID: "v1", SrcRing: 0, SrcHost: 0, DstRing: 1, DstHost: 0,
		DeadlineMillis: 60,
		Source:         scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
}

func TestServeBadRule(t *testing.T) {
	if err := serve("127.0.0.1:0", 0.5, "sorcery", nil); err == nil {
		t.Fatal("bad rule should fail fast")
	}
}

func TestServeBadAddr(t *testing.T) {
	if err := serve("256.256.256.256:1", 0.5, "proportional", nil); err == nil {
		t.Fatal("unusable address should fail")
	}
}
