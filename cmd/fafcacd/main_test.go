package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
)

// daemonMainEnv makes a re-executed test binary run the daemon's real main
// instead of the test suite, so the signal path can be exercised end to end.
const daemonMainEnv = "FAFCACD_DAEMON_MAIN"

func TestMain(m *testing.M) {
	if os.Getenv(daemonMainEnv) == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is a serve() instance under test.
type daemon struct {
	addrs serveAddrs
	stop  context.CancelFunc
	done  chan error
}

// shutdown cancels the daemon's context (the test's SIGTERM) and waits for
// the drain to finish.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	d.stop()
	select {
	case err := <-d.done:
		if err != nil {
			t.Fatalf("serve returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain after cancellation")
	}
}

// startDaemon runs serve with ephemeral ports and waits for readiness.
func startDaemon(t *testing.T, cfg serveConfig) *daemon {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Beta == 0 {
		cfg.Beta = 0.5
	}
	if cfg.Rule == "" {
		cfg.Rule = "proportional"
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 5 * time.Second
	}
	ctx, stop := context.WithCancel(context.Background())
	t.Cleanup(stop)
	ready := make(chan serveAddrs, 1)
	d := &daemon{stop: stop, done: make(chan error, 1)}
	go func() { d.done <- serve(ctx, cfg, ready) }()
	select {
	case d.addrs = <-ready:
		return d
	case err := <-d.done:
		t.Fatalf("serve failed before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

func admitRequest(id string, srcRing, dstRing int) scenario.Request {
	return scenario.Request{
		ID: id, SrcRing: srcRing, SrcHost: 0, DstRing: dstRing, DstHost: 0,
		DeadlineMillis: 60,
		Source:         scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
	}
}

func admitV1(t *testing.T, addr string) signaling.Decision {
	t.Helper()
	client, err := signaling.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dec, err := client.Admit(admitRequest("v1", 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

// reportByID fetches the daemon's admitted-connection report, keyed by id.
func reportByID(t *testing.T, addr string) map[string]signaling.ConnReport {
	t.Helper()
	client, err := signaling.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	report, err := client.Report()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]signaling.ConnReport, len(report))
	for _, r := range report {
		out[r.ID] = r
	}
	return out
}

func TestServeAndAdmit(t *testing.T) {
	d := startDaemon(t, serveConfig{})
	if d.addrs.Metrics != "" {
		t.Errorf("metrics address %q without -metrics-addr", d.addrs.Metrics)
	}
	if dec := admitV1(t, d.addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
}

func TestMetricsEndpointServesAdmissionCounters(t *testing.T) {
	d := startDaemon(t, serveConfig{MetricsAddr: "127.0.0.1:0"})
	if d.addrs.Metrics == "" {
		t.Fatal("no metrics address")
	}
	if dec := admitV1(t, d.addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + d.addrs.Metrics + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ctype)
	}
	// The admission just made must be visible. Counters are cumulative across
	// the test binary, so assert presence and a sane exposition shape rather
	// than exact values.
	for _, want := range []string{
		"# TYPE fafnet_cac_decisions_total counter",
		`fafnet_signaling_requests_total{op="admit"}`,
		`fafnet_cac_decide_seconds_bucket{le="+Inf"}`,
		"fafnet_cac_cache_mac_misses_total",
		"fafnet_cac_active_connections 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	spans, _ := get("/debug/spans")
	var recs []struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	}
	if err := json.Unmarshal([]byte(spans), &recs); err != nil {
		t.Fatalf("/debug/spans is not a JSON array: %v\n%s", err, spans)
	}
	var sawDecide bool
	for _, r := range recs {
		if r.Name == "core.decide" && r.Seconds > 0 {
			sawDecide = true
		}
	}
	if !sawDecide {
		t.Errorf("no core.decide span in /debug/spans: %s", spans)
	}

	if vars, _ := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars lacks memstats")
	}
	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ lacks profile index")
	}
}

func TestAuditLogFlagWritesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	d := startDaemon(t, serveConfig{AuditLog: path})
	if dec := admitV1(t, d.addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	n := 0
	for sc.Scan() {
		n++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("audit line %d invalid: %v", n, err)
		}
		if rec["op"] != "admit" || rec["connId"] != "v1" {
			t.Errorf("unexpected record: %v", rec)
		}
	}
	if n != 1 {
		t.Errorf("got %d audit records, want 1", n)
	}
}

// TestGracefulShutdownKeepsAuditTail is the regression test for the lost
// audit tail: the last record written before a SIGTERM-triggered drain must
// be intact and parseable on disk after the daemon exits.
func TestGracefulShutdownKeepsAuditTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	d := startDaemon(t, serveConfig{AuditLog: path})
	if dec := admitV1(t, d.addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	d.shutdown(t)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 {
		t.Fatalf("audit log holds %d records after shutdown, want 1", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &rec); err != nil {
		t.Fatalf("pre-shutdown audit tail is torn: %v\n%s", err, lines[len(lines)-1])
	}
	if rec["connId"] != "v1" {
		t.Errorf("tail record = %v, want the v1 admit", rec)
	}
}

// TestKillAndRecoverRoundTrip is the crash-recovery round trip: admit a
// workload, stop the daemon, restart it with -recover pointing at the audit
// log, and require the identical admitted set with identical delay bounds.
func TestKillAndRecoverRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	d1 := startDaemon(t, serveConfig{AuditLog: path})
	client, err := signaling.Dial(d1.addrs.Signaling, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	admits := []struct {
		id               string
		srcRing, dstRing int
	}{{"v1", 0, 1}, {"v2", 1, 2}, {"v3", 2, 0}}
	for _, a := range admits {
		dec, err := client.Admit(admitRequest(a.id, a.srcRing, a.dstRing))
		if err != nil {
			t.Fatal(err)
		}
		if !dec.Admitted {
			t.Fatalf("%s rejected: %s", a.id, dec.Reason)
		}
	}
	if ok, err := client.Release("v2"); err != nil || !ok {
		t.Fatalf("release v2: %v %v", ok, err)
	}
	client.Close()
	before := reportByID(t, d1.addrs.Signaling)
	d1.shutdown(t)

	// Restart, recovering from (and continuing to append to) the same log.
	d2 := startDaemon(t, serveConfig{AuditLog: path, Recover: path})
	after := reportByID(t, d2.addrs.Signaling)
	if len(after) != len(before) {
		t.Fatalf("recovered %d connections, want %d (%v vs %v)", len(after), len(before), after, before)
	}
	for id, w := range before {
		g, ok := after[id]
		if !ok {
			t.Errorf("connection %s lost across recovery", id)
			continue
		}
		if g != w {
			t.Errorf("connection %s changed across recovery: %+v vs %+v", id, g, w)
		}
	}
	// The recovered daemon keeps auditing into the same log: a new admit must
	// append, and a second recovery must replay the whole history.
	client2, err := signaling.Dial(d2.addrs.Signaling, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dec, err := client2.Admit(admitRequest("v4", 1, 0)); err != nil || !dec.Admitted {
		t.Fatalf("post-recovery admit: %+v %v", dec, err)
	}
	client2.Close()
	d2.shutdown(t)

	d3 := startDaemon(t, serveConfig{Recover: path})
	final := reportByID(t, d3.addrs.Signaling)
	if len(final) != 3 {
		t.Fatalf("second recovery found %d connections, want 3 (v1, v3, v4): %v", len(final), final)
	}
}

func TestRecoverMissingLogFailsFast(t *testing.T) {
	cfg := serveConfig{
		Addr: "127.0.0.1:0", Beta: 0.5, Rule: "proportional",
		Recover: filepath.Join(t.TempDir(), "no-such-audit.jsonl"),
	}
	err := serve(context.Background(), cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "recover") {
		t.Fatalf("recovery from a missing log should fail fast, got %v", err)
	}
}

// TestSigtermDrainsSubprocess exercises the real signal path end to end: the
// daemon runs as a child process, receives an actual SIGTERM, and must exit
// zero with its audit log intact.
func TestSigtermDrainsSubprocess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	cmd := exec.Command(os.Args[0],
		"-addr", "127.0.0.1:0", "-audit-log", path, "-drain-grace", "5s")
	cmd.Env = append(os.Environ(), daemonMainEnv+"=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The daemon prints its bound address on the first line.
	sc := bufio.NewScanner(stdout)
	var addr string
	for sc.Scan() {
		line := sc.Text()
		if i := strings.LastIndex(line, " on "); strings.HasPrefix(line, "fafcacd: serving") && i >= 0 {
			addr = line[i+len(" on "):]
			break
		}
	}
	if addr == "" {
		t.Fatal("daemon never announced its address")
	}
	if dec := admitV1(t, addr); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon ignored SIGTERM")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"connId":"v1"`) {
		t.Errorf("audit log lost the pre-shutdown admit:\n%s", data)
	}
}

func TestServeBadRule(t *testing.T) {
	if err := serve(context.Background(), serveConfig{Addr: "127.0.0.1:0", Beta: 0.5, Rule: "sorcery"}, nil); err == nil {
		t.Fatal("bad rule should fail fast")
	}
}

func TestServeBadAddr(t *testing.T) {
	if err := serve(context.Background(), serveConfig{Addr: "256.256.256.256:1", Beta: 0.5, Rule: "proportional"}, nil); err == nil {
		t.Fatal("unusable address should fail")
	}
}

func TestServeBadAuditPath(t *testing.T) {
	cfg := serveConfig{
		Addr: "127.0.0.1:0", Beta: 0.5, Rule: "proportional",
		AuditLog: filepath.Join(t.TempDir(), "no", "such", "dir", "audit.jsonl"),
	}
	err := serve(context.Background(), cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "audit log") {
		t.Fatalf("unusable audit path should fail fast, got %v", err)
	}
}

func TestServeBadMetricsAddr(t *testing.T) {
	cfg := serveConfig{
		Addr: "127.0.0.1:0", Beta: 0.5, Rule: "proportional",
		MetricsAddr: "256.256.256.256:1",
	}
	err := serve(context.Background(), cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "metrics listener") {
		t.Fatalf("unusable metrics address should fail fast, got %v", err)
	}
}
