package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
)

// startDaemon runs serve with ephemeral ports and waits for readiness.
func startDaemon(t *testing.T, cfg serveConfig) serveAddrs {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Beta == 0 {
		cfg.Beta = 0.5
	}
	if cfg.Rule == "" {
		cfg.Rule = "proportional"
	}
	ready := make(chan serveAddrs, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- serve(cfg, ready) }()
	select {
	case addrs := <-ready:
		return addrs
	case err := <-errCh:
		t.Fatalf("serve failed before listening: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}
	panic("unreachable")
}

func admitV1(t *testing.T, addr string) signaling.Decision {
	t.Helper()
	client, err := signaling.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	dec, err := client.Admit(scenario.Request{
		ID: "v1", SrcRing: 0, SrcHost: 0, DstRing: 1, DstHost: 0,
		DeadlineMillis: 60,
		Source:         scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return dec
}

func TestServeAndAdmit(t *testing.T) {
	addrs := startDaemon(t, serveConfig{})
	if addrs.Metrics != "" {
		t.Errorf("metrics address %q without -metrics-addr", addrs.Metrics)
	}
	if dec := admitV1(t, addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
}

func TestMetricsEndpointServesAdmissionCounters(t *testing.T) {
	addrs := startDaemon(t, serveConfig{MetricsAddr: "127.0.0.1:0"})
	if addrs.Metrics == "" {
		t.Fatal("no metrics address")
	}
	if dec := admitV1(t, addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + addrs.Metrics + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ctype)
	}
	// The admission just made must be visible. Counters are cumulative across
	// the test binary, so assert presence and a sane exposition shape rather
	// than exact values.
	for _, want := range []string{
		"# TYPE fafnet_cac_decisions_total counter",
		`fafnet_signaling_requests_total{op="admit"}`,
		`fafnet_cac_decide_seconds_bucket{le="+Inf"}`,
		"fafnet_cac_cache_mac_misses_total",
		"fafnet_cac_active_connections 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	spans, _ := get("/debug/spans")
	var recs []struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	}
	if err := json.Unmarshal([]byte(spans), &recs); err != nil {
		t.Fatalf("/debug/spans is not a JSON array: %v\n%s", err, spans)
	}
	var sawDecide bool
	for _, r := range recs {
		if r.Name == "core.decide" && r.Seconds > 0 {
			sawDecide = true
		}
	}
	if !sawDecide {
		t.Errorf("no core.decide span in /debug/spans: %s", spans)
	}

	if vars, _ := get("/debug/vars"); !strings.Contains(vars, "memstats") {
		t.Error("/debug/vars lacks memstats")
	}
	if idx, _ := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ lacks profile index")
	}
}

func TestAuditLogFlagWritesRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.jsonl")
	addrs := startDaemon(t, serveConfig{AuditLog: path})
	if dec := admitV1(t, addrs.Signaling); !dec.Admitted {
		t.Fatalf("rejected: %s", dec.Reason)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	n := 0
	for sc.Scan() {
		n++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("audit line %d invalid: %v", n, err)
		}
		if rec["op"] != "admit" || rec["connId"] != "v1" {
			t.Errorf("unexpected record: %v", rec)
		}
	}
	if n != 1 {
		t.Errorf("got %d audit records, want 1", n)
	}
}

func TestServeBadRule(t *testing.T) {
	if err := serve(serveConfig{Addr: "127.0.0.1:0", Beta: 0.5, Rule: "sorcery"}, nil); err == nil {
		t.Fatal("bad rule should fail fast")
	}
}

func TestServeBadAddr(t *testing.T) {
	if err := serve(serveConfig{Addr: "256.256.256.256:1", Beta: 0.5, Rule: "proportional"}, nil); err == nil {
		t.Fatal("unusable address should fail")
	}
}

func TestServeBadAuditPath(t *testing.T) {
	cfg := serveConfig{
		Addr: "127.0.0.1:0", Beta: 0.5, Rule: "proportional",
		AuditLog: filepath.Join(t.TempDir(), "no", "such", "dir", "audit.jsonl"),
	}
	err := serve(cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "audit log") {
		t.Fatalf("unusable audit path should fail fast, got %v", err)
	}
}

func TestServeBadMetricsAddr(t *testing.T) {
	cfg := serveConfig{
		Addr: "127.0.0.1:0", Beta: 0.5, Rule: "proportional",
		MetricsAddr: "256.256.256.256:1",
	}
	err := serve(cfg, nil)
	if err == nil || !strings.Contains(err.Error(), "metrics listener") {
		t.Fatalf("unusable metrics address should fail fast, got %v", err)
	}
}
