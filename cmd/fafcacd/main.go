// Command fafcacd is the connection-establishment daemon: it owns a network
// model and its admission controller and serves admit/preview/release/report
// requests over TCP as newline-delimited JSON (see internal/signaling).
//
// Usage:
//
//	fafcacd -addr :7447 [-beta 0.5] [-rule proportional]
//	        [-pipeline sharded] [-lanes 0]
//	        [-metrics-addr :9447] [-audit-log cac-audit.jsonl]
//	        [-audit-queue 1024] [-audit-group-sync]
//	        [-recover cac-audit.jsonl] [-drain-grace 10s] [-idle-timeout 5m]
//
// The default backend is the sharded admission pipeline: per-ring shard
// controllers, concurrent request handling, and an asynchronous audit
// writer (see DESIGN.md §10). -pipeline serialized selects the original
// single-controller-behind-a-mutex backend; both make identical decisions.
//
// Try it with netcat:
//
//	echo '{"op":"admit","admit":{"id":"v1","srcRing":0,"srcHost":0,
//	      "dstRing":1,"dstHost":0,"deadlineMillis":60,
//	      "source":{"type":"dualPeriodic","c1Kbit":50,"p1Millis":10,
//	                "c2Kbit":10,"p2Millis":1}}}' | nc localhost 7447
//
// With -metrics-addr set, a second HTTP listener serves the operational
// surface (see OPERATIONS.md for the full catalog):
//
//	/metrics       Prometheus text exposition of all fafnet_* metrics
//	/debug/spans   most recent spans (JSON), newest last
//	/debug/vars    Go runtime expvars
//	/debug/pprof/  CPU, heap and contention profiles
//
// With -audit-log set, every admit/preview/release appends one JSON record
// to the named file (created if absent, opened in append mode so external
// rotation is safe).
//
// On SIGINT or SIGTERM the daemon drains instead of dying mid-request: it
// stops accepting, closes idle connections, lets in-flight requests finish
// (bounded by -drain-grace), then flushes the audit log to disk and exits.
// After a crash or kill, -recover replays an audit log to rebuild the
// admitted-connection state before serving; pointing -recover and -audit-log
// at the same file resumes a daemon exactly where it stopped.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
	"fafnet/internal/topo"
)

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.Addr, "addr", "127.0.0.1:7447", "signaling listen address")
	flag.Float64Var(&cfg.Beta, "beta", 0.5, "allocation knob of Eq. 35–36")
	flag.StringVar(&cfg.Rule, "rule", "proportional", "allocation rule: proportional, fixed-split, or sender-biased")
	flag.StringVar(&cfg.MetricsAddr, "metrics-addr", "", "HTTP listen address for /metrics, /debug/spans, /debug/vars and /debug/pprof (disabled when empty)")
	flag.StringVar(&cfg.AuditLog, "audit-log", "", "path of the admission audit log, one JSON record per operation (disabled when empty)")
	flag.StringVar(&cfg.Recover, "recover", "", "audit log to replay before serving, rebuilding admitted-connection state (see OPERATIONS.md)")
	flag.DurationVar(&cfg.DrainGrace, "drain-grace", 10*time.Second, "how long a SIGINT/SIGTERM drain waits for in-flight requests before force-closing")
	flag.DurationVar(&cfg.IdleTimeout, "idle-timeout", 0, "close client connections idle longer than this (0 disables)")
	flag.StringVar(&cfg.Pipeline, "pipeline", "sharded", "admission backend: sharded (concurrent per-ring pipeline) or serialized (single controller behind a mutex)")
	flag.IntVar(&cfg.Lanes, "lanes", 0, "analyzer lanes of the sharded pipeline (0 selects a GOMAXPROCS-based default)")
	flag.IntVar(&cfg.AuditQueue, "audit-queue", 1024, "async audit writer queue depth (sharded pipeline; full queue applies backpressure, never drops)")
	flag.BoolVar(&cfg.AuditGroupSync, "audit-group-sync", true, "fsync the audit log once per drained batch instead of only at shutdown (sharded pipeline)")
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fafcacd:", err)
		os.Exit(1)
	}
}

// serveConfig bundles the daemon's knobs.
type serveConfig struct {
	Addr           string        // signaling listen address
	Beta           float64       // Eq. 35–36 allocation knob
	Rule           string        // allocation rule name
	MetricsAddr    string        // HTTP observability address; "" disables
	AuditLog       string        // audit-log path; "" disables
	Recover        string        // audit log to replay at startup; "" disables
	DrainGrace     time.Duration // in-flight budget of a signal-triggered drain
	IdleTimeout    time.Duration // per-connection idle deadline; 0 disables
	Pipeline       string        // admission backend: "sharded" or "serialized" ("" selects sharded)
	Lanes          int           // sharded analyzer lanes; 0 selects the default
	AuditQueue     int           // async audit queue depth (sharded); ≤0 selects the default
	AuditGroupSync bool          // group fsync per drained audit batch (sharded)
}

// serveAddrs reports the addresses a running daemon actually bound (useful
// with ":0" listeners). Metrics is empty when the HTTP surface is disabled.
type serveAddrs struct {
	Signaling string
	Metrics   string
}

// spanRingSize bounds /debug/spans; old spans are overwritten, never block.
const spanRingSize = 512

// serve builds the controller (replaying an audit log first when configured)
// and serves until the listener fails or ctx is canceled; cancellation
// triggers a graceful drain bounded by cfg.DrainGrace, after which the audit
// log is flushed to stable storage. ready, when non-nil, receives the bound
// addresses once listening (used by tests).
func serve(ctx context.Context, cfg serveConfig, ready chan<- serveAddrs) error {
	s := scenario.Scenario{CAC: scenario.CAC{Beta: &cfg.Beta, Rule: cfg.Rule}}
	opts, err := s.CACOptions()
	if err != nil {
		return err
	}
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		return err
	}
	var srv *signaling.Server
	switch cfg.Pipeline {
	case "", "sharded":
		pipe, err := core.NewSharded(net0, opts, cfg.Lanes)
		if err != nil {
			return err
		}
		if cfg.Recover != "" {
			// Replay rebuilds state through the serialized controller (the
			// replay semantics PR 4 fixed), on a scratch network so the
			// serving topology's ring ledgers stay untouched; the recovered
			// set then loads into the pipeline wholesale.
			scratch, err := topo.NewNetwork(topo.Default())
			if err != nil {
				return err
			}
			rctl, err := core.NewController(scratch, opts)
			if err != nil {
				return err
			}
			if err := recoverState(rctl, cfg.Recover); err != nil {
				return err
			}
			if err := pipe.Restore(rctl.Connections()); err != nil {
				return fmt.Errorf("recover %s: %w", cfg.Recover, err)
			}
		}
		srv, err = signaling.NewShardedServer(pipe)
		if err != nil {
			return err
		}
	case "serialized":
		ctl, err := core.NewController(net0, opts)
		if err != nil {
			return err
		}
		if cfg.Recover != "" {
			if err := recoverState(ctl, cfg.Recover); err != nil {
				return err
			}
		}
		srv, err = signaling.NewServer(ctl)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown -pipeline %q (want sharded or serialized)", cfg.Pipeline)
	}
	srv.IdleTimeout = cfg.IdleTimeout

	if cfg.AuditLog != "" {
		audit, err := obs.OpenAuditLog(cfg.AuditLog)
		if err != nil {
			return fmt.Errorf("audit log: %w", err)
		}
		if cfg.Pipeline == "serialized" {
			// Sync before Close so the tail survives whatever happens to the
			// host right after we exit; on the happy path this runs after the
			// drain below, when no more records can arrive. A failure here
			// cannot be returned (we are already unwinding), but it must not
			// be silent either: the operator needs to know the tail may be
			// short before trusting a replay.
			defer func() {
				if err := audit.Sync(); err != nil {
					fmt.Fprintln(os.Stderr, "fafcacd: audit log sync:", err)
				}
				if err := audit.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "fafcacd: audit log close:", err)
				}
			}()
			srv.SetAuditLog(audit)
		} else {
			// The sharded pipeline audits through the async writer: records
			// enqueue in commit order and a background goroutine appends
			// them with one group fsync per batch. The deferred Close runs
			// after the drain below, when no handler can still enqueue; it
			// drains the queue, syncs, and closes the log.
			writer := obs.NewAsyncAuditWriter(audit, cfg.AuditQueue, cfg.AuditGroupSync)
			defer func() {
				if err := writer.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "fafcacd: audit log close:", err)
				}
			}()
			srv.SetAsyncAudit(writer)
		}
	}

	var addrs serveAddrs
	if cfg.MetricsAddr != "" {
		ring := obs.NewSpanRing(spanRingSize)
		obs.SetSpanSink(ring)
		ml, err := net.Listen("tcp", cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsDone := make(chan struct{})
		defer func() {
			// Closing the listener makes http.Serve return; waiting on the
			// join channel means serve never leaves the metrics goroutine
			// behind writing to a dead ring.
			_ = ml.Close()
			<-metricsDone
		}()
		addrs.Metrics = ml.Addr().String()
		go func() {
			defer close(metricsDone)
			if err := http.Serve(ml, metricsMux(ring)); err != nil {
				// The listener dying (e.g. at shutdown) must not kill the
				// daemon; admission service continues without metrics.
				fmt.Fprintln(os.Stderr, "fafcacd: metrics server:", err)
			}
		}()
	}

	l, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	addrs.Signaling = l.Addr().String()
	pipeline := cfg.Pipeline
	if pipeline == "" {
		pipeline = "sharded"
	}
	fmt.Printf("fafcacd: serving the CAC (beta=%.2g, rule=%s, pipeline=%s) on %s\n", cfg.Beta, cfg.Rule, pipeline, l.Addr())
	if addrs.Metrics != "" {
		fmt.Printf("fafcacd: metrics on http://%s/metrics\n", addrs.Metrics)
	}
	if ready != nil {
		ready <- addrs
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Printf("fafcacd: shutdown requested, draining for up to %v\n", cfg.DrainGrace)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainGrace)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "fafcacd: drain budget expired; stragglers force-closed:", err)
	}
	if err := <-serveErr; err != nil {
		return err
	}
	fmt.Println("fafcacd: drained")
	return nil
}

// recoverState replays an audit log into a fresh controller (see
// signaling.Replay), printing what it rebuilt.
func recoverState(ctl *core.Controller, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	records, err := obs.ReadAuditRecords(f)
	closeErr := f.Close()
	if err != nil {
		return fmt.Errorf("recover %s: %w", path, err)
	}
	if closeErr != nil {
		return fmt.Errorf("recover %s: %w", path, closeErr)
	}
	stats, err := signaling.Replay(ctl, records)
	if err != nil {
		return fmt.Errorf("recover %s: %w", path, err)
	}
	fmt.Printf("fafcacd: recovered from %s: %d admissions replayed, %d releases re-applied, %d records skipped, %d connections active\n",
		path, stats.Admits, stats.Releases, stats.Skipped, ctl.Active())
	return nil
}

// metricsMux assembles the observability HTTP surface. A dedicated mux (not
// http.DefaultServeMux) so nothing else a future import registers leaks onto
// the operational port.
func metricsMux(ring *obs.SpanRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Default.Handler())
	mux.Handle("/debug/spans", ring.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
