// Command fafcacd is the connection-establishment daemon: it owns a network
// model and its admission controller and serves admit/preview/release/report
// requests over TCP as newline-delimited JSON (see internal/signaling).
//
// Usage:
//
//	fafcacd -addr :7447 [-beta 0.5] [-rule proportional]
//
// Try it with netcat:
//
//	echo '{"op":"admit","admit":{"id":"v1","srcRing":0,"srcHost":0,
//	      "dstRing":1,"dstHost":0,"deadlineMillis":60,
//	      "source":{"type":"dualPeriodic","c1Kbit":50,"p1Millis":10,
//	                "c2Kbit":10,"p2Millis":1}}}' | nc localhost 7447
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"fafnet/internal/core"
	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
	"fafnet/internal/topo"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7447", "listen address")
		beta = flag.Float64("beta", 0.5, "allocation knob of Eq. 35–36")
		rule = flag.String("rule", "proportional", "allocation rule: proportional, fixed-split, or sender-biased")
	)
	flag.Parse()
	if err := serve(*addr, *beta, *rule, nil); err != nil {
		fmt.Fprintln(os.Stderr, "fafcacd:", err)
		os.Exit(1)
	}
}

// serve builds the controller and serves until the listener fails; ready,
// when non-nil, receives the bound address once listening (used by tests).
func serve(addr string, beta float64, rule string, ready chan<- string) error {
	s := scenario.Scenario{CAC: scenario.CAC{Beta: &beta, Rule: rule}}
	opts, err := s.CACOptions()
	if err != nil {
		return err
	}
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		return err
	}
	ctl, err := core.NewController(net0, opts)
	if err != nil {
		return err
	}
	srv, err := signaling.NewServer(ctl)
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("fafcacd: serving the CAC (beta=%.2g, rule=%s) on %s\n", beta, rule, l.Addr())
	if ready != nil {
		ready <- l.Addr().String()
	}
	return srv.Serve(l)
}
