// Command fafbench converts `go test -bench` output into a machine-readable
// JSON report for benchmark tracking (the BENCH_*.json files committed with
// performance PRs and uploaded by the CI bench-smoke job).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | fafbench -o BENCH.json
//	fafbench -o BENCH.json bench.out
//
// Each benchmark line becomes one record with the iteration count, the
// standard ns/op, B/op and allocs/op measurements, and any custom metrics
// reported via (*testing.B).ReportMetric (for this repository: the admission
// probability AP of the experiment benches).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fafbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	report, err := Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "fafbench: no benchmark lines in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
}
