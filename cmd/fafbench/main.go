// Command fafbench converts `go test -bench` output into a machine-readable
// JSON report for benchmark tracking (the BENCH_*.json files committed with
// performance PRs and uploaded by the CI bench-smoke job).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | fafbench -o BENCH.json
//	fafbench -o BENCH.json bench.out
//	fafbench -compare [-ns-ratio 1.25] [-allocs-ratio 1.10] [-format markdown] old.json new.json
//
// Each benchmark line becomes one record with the iteration count, the
// standard ns/op, B/op and allocs/op measurements, and any custom metrics
// reported via (*testing.B).ReportMetric (for this repository: the admission
// probability AP of the experiment benches).
//
// The -compare mode diffs two reports and exits 2 when new regresses past
// the thresholds: ns/op beyond -ns-ratio times the old value, allocs/op
// beyond -allocs-ratio times the old value, or a benchmark missing from the
// new report. A ratio of 0 disables that gate — CI disables the wall-clock
// gate (-ns-ratio=0) because shared runners are too noisy for it, keeping
// only the deterministic allocation gate; interleaved same-machine runs use
// both.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two fafbench JSON reports (old new) and exit 2 on regression")
	nsRatio := flag.Float64("ns-ratio", 1.25, "with -compare: fail when ns/op exceeds old by this factor (0 disables)")
	allocsRatio := flag.Float64("allocs-ratio", 1.10, "with -compare: fail when allocs/op exceeds old by this factor (0 disables)")
	format := flag.String("format", "text", "with -compare: output format, text or markdown (a summary table for PRs and CI job summaries)")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "fafbench: -compare requires exactly two arguments: old.json new.json")
			os.Exit(1)
		}
		runCompare(flag.Arg(0), flag.Arg(1), *format, CompareThresholds{NsRatio: *nsRatio, AllocsRatio: *allocsRatio})
		return
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "fafbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	report, err := Parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "fafbench: no benchmark lines in input")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
}
