package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: fafnet
cpu: Intel(R) Xeon(R) CPU
BenchmarkFigure7/U0.3/beta0.0-4         	       1	 312456789 ns/op	         0.9062 AP
BenchmarkCACAdmit/active9-4             	     120	   9845401 ns/op	 8387874 B/op	   11988 allocs/op
BenchmarkDelayAnalysis-4                	    8484	    141955 ns/op	  202337 B/op	     495 allocs/op
BenchmarkEnvelopeEval-4                 	31415926	        38.27 ns/op
PASS
ok  	fafnet	42.123s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "fafnet" {
		t.Errorf("header = %q/%q/%q", rep.Goos, rep.Goarch, rep.Pkg)
	}
	if rep.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(rep.Benchmarks))
	}

	fig := rep.Benchmarks[0]
	if fig.Name != "Figure7/U0.3/beta0.0" {
		t.Errorf("name = %q", fig.Name)
	}
	if fig.Iterations != 1 || fig.NsPerOp != 312456789 {
		t.Errorf("figure bench = %+v", fig)
	}
	if got := fig.Metrics["AP"]; got != 0.9062 {
		t.Errorf("AP metric = %v", got)
	}
	if fig.BytesPerOp != nil || fig.AllocsPerOp != nil {
		t.Error("figure bench has alloc stats without -benchmem fields")
	}

	cac := rep.Benchmarks[1]
	if cac.Name != "CACAdmit/active9" || cac.Iterations != 120 {
		t.Errorf("cac bench = %+v", cac)
	}
	if cac.BytesPerOp == nil || *cac.BytesPerOp != 8387874 {
		t.Errorf("cac B/op = %v", cac.BytesPerOp)
	}
	if cac.AllocsPerOp == nil || *cac.AllocsPerOp != 11988 {
		t.Errorf("cac allocs/op = %v", cac.AllocsPerOp)
	}
	if len(cac.Metrics) != 0 {
		t.Errorf("cac metrics = %v", cac.Metrics)
	}

	if ee := rep.Benchmarks[3]; ee.NsPerOp != 38.27 {
		t.Errorf("sub-ns bench ns/op = %v", ee.NsPerOp)
	}
}

func TestParseSkipsNonResultLines(t *testing.T) {
	in := "BenchmarkBare\nBenchmarkFoo-8 10 5 ns/op\n--- BENCH: BenchmarkFoo-8\nnot a bench\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].Name != "Foo" {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}

func TestParseRejectsMalformedMeasurements(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkBad-4 10 5 ns/op trailing\n")); err == nil {
		t.Error("odd measurement fields should be rejected")
	}
	if _, err := Parse(strings.NewReader("BenchmarkBad-4 10 notanumber ns/op\n")); err == nil {
		t.Error("non-numeric value should be rejected")
	}
}
