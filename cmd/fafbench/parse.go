package main

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Report is the JSON shape of one benchmark run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one `BenchmarkName-P  N  v unit  v unit ...` result line.
type Benchmark struct {
	// Name is the benchmark name with the "Benchmark" prefix and the
	// trailing -GOMAXPROCS suffix removed, e.g. "CACAdmit/active9".
	Name string `json:"name"`
	// Iterations is b.N for the reported measurement.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard measurements;
	// the allocation pair is present only under -benchmem.
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other value/unit pair on the line — custom metrics
	// from (*testing.B).ReportMetric, such as the experiment benches' AP.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// procSuffix is the -GOMAXPROCS tail the testing package appends to names.
var procSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and collects every result line, in
// input order, together with the run's environment header.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok, err := parseLine(line)
		if err != nil {
			return Report{}, err
		}
		if ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	return rep, nil
}

// parseLine decodes one result line. Lines that start with "Benchmark" but
// are not results (e.g. the bare name echoed by -v) report ok=false.
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	// A result line has at least: name, iterations, value, unit.
	if len(fields) < 4 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{
		Name:       procSuffix.ReplaceAllString(strings.TrimPrefix(fields[0], "Benchmark"), ""),
		Iterations: iters,
	}
	// The remainder is value/unit pairs.
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, false, fmt.Errorf("fafbench: odd measurement fields in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("fafbench: bad value %q in %q: %w", rest[i], line, err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			val := v
			b.BytesPerOp = &val
		case "allocs/op":
			val := v
			b.AllocsPerOp = &val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, true, nil
}
