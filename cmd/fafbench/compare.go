package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// CompareThresholds configures the regression gates of Compare. A zero ratio
// disables that gate.
type CompareThresholds struct {
	// NsRatio fails a benchmark whose ns/op exceeds the old value by this
	// factor (e.g. 1.25 allows up to +25%). Wall-clock measurements are
	// noisy, so this gate is usually disabled (-ns-ratio=0) on shared CI
	// runners and applied only to interleaved same-machine runs.
	NsRatio float64
	// AllocsRatio fails a benchmark whose allocs/op exceeds the old value by
	// this factor. Allocation counts are deterministic for a given code
	// path, so this gate is meaningful even on noisy runners; a benchmark
	// with zero old allocs/op must stay at zero.
	AllocsRatio float64
}

// Regression is one threshold violation found by Compare.
type Regression struct {
	Name   string
	Detail string
}

// Compare diffs two fafbench reports benchmark-by-benchmark. Every benchmark
// of the old report must be present in the new one — a disappeared benchmark
// is itself a regression (a renamed bench must update its committed
// baseline). Benchmarks only in the new report are listed but never fail.
// The human-readable diff is written to w.
func Compare(w io.Writer, old, new Report, th CompareThresholds) []Regression {
	var regs []Regression
	eachRow(old, new, th, &regs,
		func(ob Benchmark) { fmt.Fprintf(w, "%-40s MISSING from new report\n", ob.Name) },
		func(ob, nb Benchmark, verdicts []string) {
			fmt.Fprintf(w, "%-40s ns/op %12.4g -> %-12.4g (%s)", ob.Name, ob.NsPerOp, nb.NsPerOp, ratio(ob.NsPerOp, nb.NsPerOp))
			if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
				fmt.Fprintf(w, "  allocs/op %6g -> %-6g", *ob.AllocsPerOp, *nb.AllocsPerOp)
			}
			for _, v := range verdicts {
				fmt.Fprintf(w, "  %s", v)
			}
			fmt.Fprintln(w)
		},
		func(name string) { fmt.Fprintf(w, "%-40s only in new report (not gated)\n", name) },
	)
	return regs
}

// CompareMarkdown renders the same diff as Compare as a GitHub-flavored
// markdown table (one row per benchmark, verdict column flagging gate
// violations), suitable for pasting into a PR description or a CI job
// summary. The regression verdicts are identical to Compare's.
func CompareMarkdown(w io.Writer, old, new Report, th CompareThresholds) []Regression {
	fmt.Fprintln(w, "| benchmark | ns/op (old) | ns/op (new) | ratio | allocs/op (old → new) | verdict |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---|")
	var regs []Regression
	eachRow(old, new, th, &regs,
		func(ob Benchmark) {
			fmt.Fprintf(w, "| %s | %.4g | — | — | — | missing from new report |\n", ob.Name, ob.NsPerOp)
		},
		func(ob, nb Benchmark, verdicts []string) {
			allocs := "—"
			if ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
				allocs = fmt.Sprintf("%g → %g", *ob.AllocsPerOp, *nb.AllocsPerOp)
			}
			verdict := "ok"
			if len(verdicts) > 0 {
				verdict = strings.Join(verdicts, ", ")
			}
			fmt.Fprintf(w, "| %s | %.4g | %.4g | %s | %s | %s |\n",
				ob.Name, ob.NsPerOp, nb.NsPerOp, ratio(ob.NsPerOp, nb.NsPerOp), allocs, verdict)
		},
		func(name string) {
			fmt.Fprintf(w, "| %s | — | — | — | — | only in new report (not gated) |\n", name)
		},
	)
	return regs
}

// eachRow walks the old report in order, applies the regression gates, and
// dispatches each benchmark to the appropriate renderer callback: missing
// from the new report, present in both (with its gate verdicts), or present
// only in the new report (sorted, never gated). Gate violations are appended
// to *regs, so every output format shares one verdict computation.
func eachRow(old, new Report, th CompareThresholds, regs *[]Regression,
	missing func(ob Benchmark),
	both func(ob, nb Benchmark, verdicts []string),
	addedOnly func(name string),
) {
	newByName := make(map[string]Benchmark, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		newByName[b.Name] = b
	}
	oldNames := make(map[string]bool, len(old.Benchmarks))

	for _, ob := range old.Benchmarks {
		oldNames[ob.Name] = true
		nb, ok := newByName[ob.Name]
		if !ok {
			*regs = append(*regs, Regression{ob.Name, "benchmark missing from new report"})
			missing(ob)
			continue
		}
		var verdicts []string
		if th.NsRatio > 0 && nb.NsPerOp > ob.NsPerOp*th.NsRatio {
			d := fmt.Sprintf("ns/op %.4g -> %.4g exceeds %.2fx threshold", ob.NsPerOp, nb.NsPerOp, th.NsRatio)
			*regs = append(*regs, Regression{ob.Name, d})
			verdicts = append(verdicts, "REGRESSION(ns/op)")
		}
		if th.AllocsRatio > 0 && ob.AllocsPerOp != nil && nb.AllocsPerOp != nil {
			oa, na := *ob.AllocsPerOp, *nb.AllocsPerOp
			if na > oa*th.AllocsRatio && na > oa {
				d := fmt.Sprintf("allocs/op %g -> %g exceeds %.2fx threshold", oa, na, th.AllocsRatio)
				*regs = append(*regs, Regression{ob.Name, d})
				verdicts = append(verdicts, "REGRESSION(allocs/op)")
			}
		}
		both(ob, nb, verdicts)
	}

	var added []string
	for name := range newByName {
		if !oldNames[name] {
			added = append(added, name)
		}
	}
	sort.Strings(added)
	for _, name := range added {
		addedOnly(name)
	}
}

// ratio renders new/old as a factor, guarding the old == 0 edge.
func ratio(old, new float64) string {
	if old <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3fx", new/old)
}

// runCompare implements the -compare CLI mode: load both reports, diff them
// in the requested format (text or markdown), and exit 2 when any threshold
// is violated (mirroring fafvet's findings-exist exit code; operational
// errors exit 1).
func runCompare(oldPath, newPath, format string, th CompareThresholds) {
	old, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
	new, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafbench:", err)
		os.Exit(1)
	}
	var regs []Regression
	switch format {
	case "", "text":
		regs = Compare(os.Stdout, old, new, th)
	case "markdown":
		regs = CompareMarkdown(os.Stdout, old, new, th)
	default:
		fmt.Fprintf(os.Stderr, "fafbench: unknown -format %q (want text or markdown)\n", format)
		os.Exit(1)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "fafbench: %d regression(s) vs %s:\n", len(regs), oldPath)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s: %s\n", r.Name, r.Detail)
		}
		os.Exit(2)
	}
	fmt.Printf("fafbench: no regressions vs %s (%d benchmarks)\n", oldPath, len(old.Benchmarks))
}

// loadReport reads a fafbench JSON report from disk.
func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	if len(rep.Benchmarks) == 0 {
		return Report{}, fmt.Errorf("%s contains no benchmarks", path)
	}
	return rep, nil
}
