package main

import (
	"strings"
	"testing"
)

func fptr(v float64) *float64 { return &v }

func report(benches ...Benchmark) Report { return Report{Benchmarks: benches} }

func regressionNames(regs []Regression) []string {
	names := make([]string, 0, len(regs))
	for _, r := range regs {
		names = append(names, r.Name)
	}
	return names
}

func TestCompareClean(t *testing.T) {
	old := report(
		Benchmark{Name: "CACAdmit/active9", NsPerOp: 1000, AllocsPerOp: fptr(50)},
		Benchmark{Name: "EnvelopeEval", NsPerOp: 40, AllocsPerOp: fptr(0)},
	)
	new := report(
		Benchmark{Name: "CACAdmit/active9", NsPerOp: 1100, AllocsPerOp: fptr(50)},
		Benchmark{Name: "EnvelopeEval", NsPerOp: 38, AllocsPerOp: fptr(0)},
		Benchmark{Name: "BrandNew", NsPerOp: 5},
	)
	var sb strings.Builder
	regs := Compare(&sb, old, new, CompareThresholds{NsRatio: 1.25, AllocsRatio: 1.10})
	if len(regs) != 0 {
		t.Fatalf("expected no regressions, got %v", regs)
	}
	if !strings.Contains(sb.String(), "BrandNew") || !strings.Contains(sb.String(), "not gated") {
		t.Fatalf("new-only benchmark not listed:\n%s", sb.String())
	}
}

func TestCompareNsRegression(t *testing.T) {
	old := report(Benchmark{Name: "MACAnalysis", NsPerOp: 1000})
	new := report(Benchmark{Name: "MACAnalysis", NsPerOp: 1500})
	regs := Compare(&strings.Builder{}, old, new, CompareThresholds{NsRatio: 1.25, AllocsRatio: 1.10})
	if len(regs) != 1 || regs[0].Name != "MACAnalysis" || !strings.Contains(regs[0].Detail, "ns/op") {
		t.Fatalf("expected one ns/op regression, got %v", regs)
	}
	// The wall-clock gate must be fully disabled by a zero ratio.
	if regs := Compare(&strings.Builder{}, old, new, CompareThresholds{NsRatio: 0, AllocsRatio: 1.10}); len(regs) != 0 {
		t.Fatalf("ns gate not disabled by zero ratio: %v", regs)
	}
}

func TestCompareAllocsRegression(t *testing.T) {
	old := report(Benchmark{Name: "CACAdmit/active0", NsPerOp: 100, AllocsPerOp: fptr(40)})
	new := report(Benchmark{Name: "CACAdmit/active0", NsPerOp: 100, AllocsPerOp: fptr(60)})
	regs := Compare(&strings.Builder{}, old, new, CompareThresholds{NsRatio: 0, AllocsRatio: 1.10})
	if len(regs) != 1 || !strings.Contains(regs[0].Detail, "allocs/op") {
		t.Fatalf("expected one allocs/op regression, got %v", regs)
	}
}

func TestCompareZeroAllocsMustStayZero(t *testing.T) {
	// A benchmark that used to run allocation-free must keep doing so: with
	// an old value of 0, any ratio threshold is also 0, so a single new
	// allocation per op trips the gate.
	old := report(Benchmark{Name: "EnvelopeEval", NsPerOp: 40, AllocsPerOp: fptr(0)})
	new := report(Benchmark{Name: "EnvelopeEval", NsPerOp: 40, AllocsPerOp: fptr(1)})
	regs := Compare(&strings.Builder{}, old, new, CompareThresholds{NsRatio: 0, AllocsRatio: 1.10})
	if len(regs) != 1 || !strings.Contains(regs[0].Detail, "allocs/op") {
		t.Fatalf("expected zero-alloc regression, got %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	old := report(
		Benchmark{Name: "MACAnalysis", NsPerOp: 1000},
		Benchmark{Name: "MuxAnalysis", NsPerOp: 800},
	)
	new := report(Benchmark{Name: "MACAnalysis", NsPerOp: 1000})
	regs := Compare(&strings.Builder{}, old, new, CompareThresholds{})
	if got := regressionNames(regs); len(got) != 1 || got[0] != "MuxAnalysis" {
		t.Fatalf("expected MuxAnalysis missing-regression, got %v", regs)
	}
}

func TestCompareSkipsAllocsWhenAbsent(t *testing.T) {
	// Reports captured without -benchmem carry no allocs/op; the allocation
	// gate must not fire on the missing measurement.
	old := report(Benchmark{Name: "Figure7/U0.3/beta0.0", NsPerOp: 100, AllocsPerOp: fptr(10)})
	new := report(Benchmark{Name: "Figure7/U0.3/beta0.0", NsPerOp: 100})
	if regs := Compare(&strings.Builder{}, old, new, CompareThresholds{AllocsRatio: 1.10}); len(regs) != 0 {
		t.Fatalf("allocs gate fired without measurements: %v", regs)
	}
}

func TestCompareMarkdown(t *testing.T) {
	old := report(
		Benchmark{Name: "CACAdmit/active9", NsPerOp: 12e6, AllocsPerOp: fptr(5000)},
		Benchmark{Name: "MACAnalysis", NsPerOp: 1000},
		Benchmark{Name: "Gone", NsPerOp: 7},
	)
	new := report(
		Benchmark{Name: "CACAdmit/active9", NsPerOp: 1e6, AllocsPerOp: fptr(5000)},
		Benchmark{Name: "MACAnalysis", NsPerOp: 1500},
		Benchmark{Name: "BrandNew", NsPerOp: 5},
	)
	var sb strings.Builder
	regs := CompareMarkdown(&sb, old, new, CompareThresholds{NsRatio: 1.25, AllocsRatio: 1.10})
	out := sb.String()

	// Verdicts must match the text renderer's exactly: one ns/op regression
	// (MACAnalysis) and one missing benchmark (Gone).
	if got := regressionNames(regs); len(got) != 2 || got[0] != "MACAnalysis" && got[1] != "MACAnalysis" {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header + separator + 4 benchmark rows
		t.Fatalf("expected 6 table lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "| benchmark |") || !strings.HasPrefix(lines[1], "|---") {
		t.Fatalf("missing table header:\n%s", out)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "|") || !strings.HasSuffix(line, "|") {
			t.Fatalf("line %d is not a table row: %q", i, line)
		}
	}
	for _, want := range []string{
		"| CACAdmit/active9 | 1.2e+07 | 1e+06 | 0.083x | 5000 → 5000 | ok |",
		"REGRESSION(ns/op)",
		"missing from new report",
		"only in new report (not gated)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown output missing %q:\n%s", want, out)
		}
	}
}
