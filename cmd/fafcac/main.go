// Command fafcac runs connection admission control over a JSON scenario:
// it executes the scenario's admissions and releases in order, printing
// each decision, the granted allocations, and the per-server worst-case
// delay budget of every admitted connection (the Eq. 7 decomposition).
//
// Usage:
//
//	fafcac [-scenario file.json] [-v]
//
// Without -scenario the built-in demonstration scenario runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"fafnet/internal/core"
	"fafnet/internal/scenario"
	"fafnet/internal/topo"
)

func main() {
	var (
		path    = flag.String("scenario", "", "scenario JSON file (default: built-in demo)")
		verbose = flag.Bool("v", false, "print the delay breakdown of every admitted connection")
	)
	flag.Parse()
	if err := run(os.Stdout, *path, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "fafcac:", err)
		os.Exit(1)
	}
}

// run executes the scenario and writes the decision log to w. Keeping w a
// parameter lets the golden-file test pin the output bytes.
func run(w io.Writer, path string, verbose bool) error {
	var (
		s   scenario.Scenario
		err error
	)
	if path == "" {
		s = scenario.Default()
	} else if s, err = scenario.Load(path); err != nil {
		return err
	}

	net, err := topo.NewNetwork(s.TopologyConfig())
	if err != nil {
		return err
	}
	opts, err := s.CACOptions()
	if err != nil {
		return err
	}
	ctl, err := core.NewController(net, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "scenario %q: %d rings × %d hosts, %d switches, beta=%.2g, rule=%s\n\n",
		s.Name, net.Config().NumRings, net.Config().HostsPerRing, net.Config().NumSwitches,
		ctl.Options().Beta, ctl.Options().Rule)

	for i, a := range s.Actions {
		if a.Release != "" {
			if ctl.Release(a.Release) {
				fmt.Fprintf(w, "%2d. release %-10s ok\n", i+1, a.Release)
			} else {
				fmt.Fprintf(w, "%2d. release %-10s (not admitted)\n", i+1, a.Release)
			}
			continue
		}
		spec, err := a.Admit.Spec()
		if err != nil {
			return err
		}
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			return err
		}
		if !dec.Admitted {
			fmt.Fprintf(w, "%2d. admit   %-10s REJECTED: %s (probes=%d)\n", i+1, spec.ID, dec.Reason, dec.Probes)
			continue
		}
		fmt.Fprintf(w, "%2d. admit   %-10s %v→%v  H_S=%.3fms H_R=%.3fms  delay=%.2fms/deadline=%.0fms (probes=%d)\n",
			i+1, spec.ID, spec.Src, spec.Dst, dec.HS*1e3, dec.HR*1e3,
			dec.Delays[spec.ID]*1e3, spec.Deadline*1e3, dec.Probes)
		if verbose {
			printBreakdown(w, ctl, spec.ID)
		}
	}

	fmt.Fprintln(w)
	fmt.Fprintln(w, "final state:")
	report, err := ctl.DelayReport()
	if err != nil {
		return err
	}
	for _, c := range ctl.Connections() {
		fmt.Fprintf(w, "  %-10s %v→%v  worst-case %.2f ms  (deadline %.0f ms, slack %.2f ms)\n",
			c.ID, c.Src, c.Dst, report[c.ID]*1e3, c.Deadline*1e3, (c.Deadline-report[c.ID])*1e3)
	}
	for r := 0; r < net.NumRings(); r++ {
		ring := net.Ring(r)
		fmt.Fprintf(w, "  ring %d: %.3f ms of %.3f ms synchronous time allocated\n",
			r, ring.Allocated()*1e3, ring.Config().UsableTTRT()*1e3)
	}
	if verbose {
		buffers, err := ctl.BufferReport()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "buffer provisioning (Theorem 1, Eq. 10):")
		for _, b := range buffers {
			fmt.Fprintf(w, "  %-10s source MAC %.1f kbit, interface-device MAC %.1f kbit\n",
				b.ConnID, b.SrcBufferBits/1e3, b.DstBufferBits/1e3)
		}
	}
	return nil
}

func printBreakdown(w io.Writer, ctl *core.Controller, id string) {
	bd, err := ctl.BreakdownFor(id)
	if err != nil {
		fmt.Fprintf(w, "      breakdown unavailable: %v\n", err)
		return
	}
	fmt.Fprintf(w, "      src MAC %.3fms", bd.SrcMAC*1e3)
	for _, p := range bd.Ports {
		fmt.Fprintf(w, " | %s %.3fms", p.Port, p.Delay*1e3)
	}
	if bd.DstMAC > 0 {
		fmt.Fprintf(w, " | dst MAC %.3fms", bd.DstMAC*1e3)
	}
	fmt.Fprintf(w, " | constant %.3fms = %.3fms\n", bd.Constant*1e3, bd.Total*1e3)
}
