package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func TestRunDefaultScenario(t *testing.T) {
	if err := run(io.Discard, "", true); err != nil {
		t.Fatalf("default scenario failed: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	doc := `{
		"name": "file-test",
		"cac": {"beta": 0.4},
		"actions": [
			{"admit": {"id": "a", "srcRing": 0, "srcHost": 0, "dstRing": 1, "dstHost": 0,
			           "deadlineMillis": 60,
			           "source": {"type": "periodic", "c1Kbit": 20, "p1Millis": 10}}}
		]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(io.Discard, path, false); err != nil {
		t.Fatalf("scenario file failed: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(io.Discard, "/nonexistent.json", false); err == nil {
		t.Error("missing scenario should error")
	}
}

// TestOutputMatchesGolden pins the demo scenario's verbose output byte for
// byte. The log encodes every admission decision, allocation, delay bound
// and buffer size of the paper's built-in demonstration; a refactor or
// sweep that changes any digit here changed the admission arithmetic and
// must justify itself. Regenerate deliberately with:
//
//	go test ./cmd/fafcac -run TestOutputMatchesGolden -update
func TestOutputMatchesGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "", true); err != nil {
		t.Fatalf("default scenario failed: %v", err)
	}
	golden := filepath.Join("testdata", "demo.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (regenerate with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
