package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	if err := run("", true); err != nil {
		t.Fatalf("default scenario failed: %v", err)
	}
}

func TestRunScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	doc := `{
		"name": "file-test",
		"cac": {"beta": 0.4},
		"actions": [
			{"admit": {"id": "a", "srcRing": 0, "srcHost": 0, "dstRing": 1, "dstHost": 0,
			           "deadlineMillis": 60,
			           "source": {"type": "periodic", "c1Kbit": 20, "p1Millis": 10}}}
		]
	}`
	if err := os.WriteFile(path, []byte(doc), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false); err != nil {
		t.Fatalf("scenario file failed: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.json", false); err == nil {
		t.Error("missing scenario should error")
	}
}
