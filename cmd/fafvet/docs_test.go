package main

import (
	"bufio"
	"os"
	"regexp"
	"strings"
	"testing"
)

// readmeAnalyzerTable extracts the analyzer names from the README's
// "| Analyzer | Enforces |" table, in row order.
func readmeAnalyzerTable(t *testing.T) []string {
	t.Helper()
	f, err := os.Open("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	row := regexp.MustCompile("^\\| `([a-z]+)` \\|")
	var names []string
	inTable := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "| Analyzer |"):
			inTable = true
		case inTable && strings.HasPrefix(line, "|"):
			if m := row.FindStringSubmatch(line); m != nil {
				names = append(names, m[1])
			}
		case inTable:
			inTable = false
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("no analyzer table found in README.md")
	}
	return names
}

// TestReadmeAnalyzerTableMatchesRegistry diffs the README analyzer table
// against the registered suite in both directions (and in order), and keeps
// the written-out count in the prose honest.
func TestReadmeAnalyzerTableMatchesRegistry(t *testing.T) {
	documented := readmeAnalyzerTable(t)
	var registered []string
	for _, a := range suite() {
		registered = append(registered, a.Name)
	}

	doc := make(map[string]bool, len(documented))
	for _, n := range documented {
		doc[n] = true
	}
	reg := make(map[string]bool, len(registered))
	for _, n := range registered {
		reg[n] = true
	}
	for _, n := range registered {
		if !doc[n] {
			t.Errorf("analyzer %q is registered but missing from the README table", n)
		}
	}
	for _, n := range documented {
		if !reg[n] {
			t.Errorf("analyzer %q is in the README table but not registered", n)
		}
	}
	if t.Failed() {
		return
	}
	if strings.Join(documented, " ") != strings.Join(registered, " ") {
		t.Errorf("README table order %v != registration order %v", documented, registered)
	}

	counts := map[int]string{10: "Ten", 11: "Eleven", 12: "Twelve", 13: "Thirteen", 14: "Fourteen", 15: "Fifteen", 16: "Sixteen"}
	word, ok := counts[len(registered)]
	if !ok {
		t.Fatalf("no count word for %d analyzers; extend the table in this test", len(registered))
	}
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	if want := word + " analyzers run:"; !strings.Contains(string(readme), want) {
		t.Errorf("README prose does not say %q; the analyzer count drifted", want)
	}
}
