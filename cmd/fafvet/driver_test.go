package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// badCoreSrc seeds one unitcheck finding (cross-dimension addition).
const badCoreSrc = `package core

func Sum(delay, rateBps float64) float64 { return delay + rateBps }
`

// runDriver executes the fafvet binary in standalone driver mode inside dir
// and returns stdout, stderr and the exit code.
func runDriver(t *testing.T, bin, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(bin, append(args, "./...")...)
	cmd.Dir = dir
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("running driver: %v", err)
	}
	return stdout.String(), stderr.String(), code
}

func TestDriverJSONOutput(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/core/bad.go": badCoreSrc})
	stdout, stderr, code := runDriver(t, bin, dir, "-format=json")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (findings)\nstderr: %s", code, stderr)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("driver -format=json output is not JSON: %v\n%s", err, stdout)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1:\n%s", len(diags), stdout)
	}
	d := diags[0]
	if d.Analyzer != "unitcheck" || d.File != "internal/core/bad.go" || d.Line == 0 {
		t.Errorf("unexpected diagnostic %+v", d)
	}
	if !strings.Contains(d.Message, "cross-dimension addition") {
		t.Errorf("message %q does not describe the seeded violation", d.Message)
	}
}

// TestDriverSARIFOutput checks the SARIF 2.1.0 shape GitHub code scanning
// ingests: schema/version markers, a named driver with rules, and results
// whose locations carry repo-relative URIs and start lines.
func TestDriverSARIFOutput(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/core/bad.go": badCoreSrc})
	out := filepath.Join(t.TempDir(), "fafvet.sarif")
	_, stderr, code := runDriver(t, bin, dir, "-format=sarif", "-o", out)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("-format=sarif output is not JSON: %v", err)
	}
	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") || log.Version != "2.1.0" {
		t.Errorf("schema/version = %q/%q, want SARIF 2.1.0 markers", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "fafvet" {
		t.Errorf("tool name = %q, want fafvet", run.Tool.Driver.Name)
	}
	rules := make(map[string]bool)
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, want := range []string{"unitcheck", "floatcmp", "epslit", "randsrc", "flowdims", "desorder", "lockorder", "guardedby", "golife", "errdrop"} {
		if !rules[want] {
			t.Errorf("rules are missing analyzer %q", want)
		}
	}
	if len(run.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(run.Results))
	}
	res := run.Results[0]
	loc := res.Locations[0].PhysicalLocation
	if res.RuleID != "unitcheck" || res.Level != "error" ||
		loc.ArtifactLocation.URI != "internal/core/bad.go" || loc.Region.StartLine == 0 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestDriverBaselineSuppressesKnownFindings(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/core/bad.go": badCoreSrc})
	baseline := `{
  "comment": "test waiver",
  "findings": [
    {
      "analyzer": "unitcheck",
      "file": "internal/core/bad.go",
      "message": "cross-dimension addition: seconds + bits/second"
    }
  ]
}
`
	if err := os.WriteFile(filepath.Join(dir, "baseline.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runDriver(t, bin, dir, "-baseline=baseline.json")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (finding baselined)\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("baselined run still printed findings:\n%s", stdout)
	}
}

// TestDriverNewFindingFailsDespiteBaseline checks the ratchet's other jaw:
// a baseline only waives the findings it lists — anything new still trips
// the gate.
func TestDriverNewFindingFailsDespiteBaseline(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/core/bad.go": `package core

func SumA(delay, rateBps float64) float64 { return delay + rateBps }

func SumB(delay, sizeBits float64) float64 { return delay + sizeBits }
`})
	baseline := `{
  "findings": [
    {
      "analyzer": "unitcheck",
      "file": "internal/core/bad.go",
      "message": "cross-dimension addition: seconds + bits/second"
    }
  ]
}
`
	if err := os.WriteFile(filepath.Join(dir, "baseline.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runDriver(t, bin, dir, "-baseline=baseline.json")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (one finding is not baselined)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "seconds + bits") {
		t.Errorf("output does not contain the unbaselined finding:\n%s", stdout)
	}
	if strings.Contains(stdout, "bits/second") {
		t.Errorf("output still contains the baselined finding:\n%s", stdout)
	}
}

// TestDriverStaleBaselineFails checks the ratchet: a baseline entry whose
// finding no longer exists is itself a finding, so waivers cannot outlive
// their reason.
func TestDriverStaleBaselineFails(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/core/good.go": `package core

// defaultTTRT is the target token rotation time (seconds).
const defaultTTRT = 4e-3
`})
	baseline := `{
  "findings": [
    {"analyzer": "unitcheck", "file": "internal/core/good.go", "message": "long gone"}
  ]
}
`
	if err := os.WriteFile(filepath.Join(dir, "baseline.json"), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout, stderr, code := runDriver(t, bin, dir, "-baseline=baseline.json")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stale entry)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "stale baseline entry") {
		t.Errorf("output does not flag the stale entry:\n%s", stdout)
	}
}

// TestDriverUnusedAllowReported checks suppression hygiene end to end: a
// //lint:allow comment with no matching finding is reported.
func TestDriverUnusedAllowReported(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/core/good.go": `package core

//lint:allow floatcmp nothing here needs suppressing
func Halve(delay float64) float64 { return delay / 2 }
`})
	stdout, stderr, code := runDriver(t, bin, dir)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (unused suppression)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "unused //lint:allow floatcmp") {
		t.Errorf("output does not report the unused suppression:\n%s", stdout)
	}
}

// TestDriverDotOutput checks -format=dot: the lock graph lands on stdout as
// a Graphviz digraph, edges completing a cycle are highlighted, ordinary
// edges are not, and the cycle finding itself still gates the exit code (on
// stderr, so stdout stays valid dot).
func TestDriverDotOutput(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{"internal/signaling/locks.go": `package signaling

import "sync"

var a, b, c, d sync.Mutex

func AB() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func BA() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}

func CD() {
	c.Lock()
	d.Lock()
	d.Unlock()
	c.Unlock()
}
`})
	stdout, stderr, code := runDriver(t, bin, dir, "-format=dot")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (the a/b cycle is still a finding)\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "inconsistent lock order") {
		t.Errorf("stderr does not carry the cycle finding:\n%s", stderr)
	}
	if !strings.HasPrefix(stdout, "digraph lockgraph {") || !strings.HasSuffix(strings.TrimSpace(stdout), "}") {
		t.Fatalf("stdout is not a dot digraph:\n%s", stdout)
	}
	for _, want := range []string{
		`"signaling.a" -> "signaling.b" [color=red, penwidth=2.0];`,
		`"signaling.b" -> "signaling.a" [color=red, penwidth=2.0];`,
		`"signaling.c" -> "signaling.d";`,
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("dot output is missing %q:\n%s", want, stdout)
		}
	}
	if strings.Contains(stdout, `"signaling.c" -> "signaling.d" [color=red`) {
		t.Errorf("acyclic edge drawn as a cycle:\n%s", stdout)
	}
}

// TestDriverOutputDeterministic runs the driver twice over a module with
// findings in several files and checks byte-identical, sorted output.
func TestDriverOutputDeterministic(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/core/zeta.go": `package core

func SumA(delay, rateBps float64) float64 { return delay + rateBps }

func SumB(delay, sizeBits float64) float64 { return delay + sizeBits }
`,
		"internal/core/alpha.go": `package core

func SumC(delay, rateBps float64) float64 { return delay + rateBps }
`,
	})
	first, _, code := runDriver(t, bin, dir)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	second, _, _ := runDriver(t, bin, dir)
	if first != second {
		t.Errorf("two driver runs differ:\n--- first\n%s--- second\n%s", first, second)
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d findings, want 3:\n%s", len(lines), first)
	}
	if !strings.HasPrefix(lines[0], "internal/core/alpha.go") ||
		!strings.HasPrefix(lines[1], "internal/core/zeta.go:3") ||
		!strings.HasPrefix(lines[2], "internal/core/zeta.go:5") {
		t.Errorf("findings are not sorted by file/line:\n%s", first)
	}
}
