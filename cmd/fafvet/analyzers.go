package main

import (
	"fafnet/internal/lint"
	"fafnet/internal/lint/atomicvisit"
	"fafnet/internal/lint/desorder"
	"fafnet/internal/lint/epslit"
	"fafnet/internal/lint/errdrop"
	"fafnet/internal/lint/floatcmp"
	"fafnet/internal/lint/flowdims"
	"fafnet/internal/lint/golife"
	"fafnet/internal/lint/guardedby"
	"fafnet/internal/lint/hotpath"
	"fafnet/internal/lint/lockorder"
	"fafnet/internal/lint/randsrc"
	"fafnet/internal/lint/unitcheck"
)

// suite returns the registered analyzers in their canonical order — the
// order the README table, the -analyzers listing and the SARIF rule list
// all present them in. The docs test diffs this registry against the
// README table in both directions.
func suite() []*lint.Analyzer {
	return []*lint.Analyzer{
		unitcheck.Analyzer,
		floatcmp.Analyzer,
		epslit.Analyzer,
		randsrc.Analyzer,
		flowdims.Analyzer,
		desorder.Analyzer,
		lockorder.Analyzer,
		guardedby.Analyzer,
		golife.Analyzer,
		errdrop.Analyzer,
		hotpath.Analyzer,
		atomicvisit.Analyzer,
	}
}
