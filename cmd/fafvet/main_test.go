package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the fafvet binary into a temporary directory and
// returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fafvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building fafvet: %v\n%s", err, out)
	}
	return bin
}

// vetModule runs `go vet -vettool=bin ./...` inside dir and returns the
// combined output and whether vet succeeded.
func vetModule(t *testing.T, bin, dir string) (string, bool) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err == nil
}

// writeModule materializes a throwaway module named fafnet so the analyzers'
// path-based scoping applies to its packages.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fafnet\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolationsFail re-introduces one violation per analyzer into a
// scratch module and checks that the suite rejects each: the zero-findings
// baseline over this repository is only meaningful if the gate actually
// trips.
func TestSeededViolationsFail(t *testing.T) {
	bin := buildTool(t)

	cases := []struct {
		name string
		file string
		src  string
		want string // diagnostic substring expected in the vet output
	}{
		{
			name: "randsrc global rand",
			file: "internal/des/bad.go",
			src: `package des

import "math/rand"

func Jitter() float64 { return rand.Float64() }
`,
			want: "breaks seeded replay",
		},
		{
			name: "epslit raw tolerance literal",
			file: "internal/core/bad.go",
			src: `package core

var ttrt = 4e-3
`,
			want: "raw physical literal",
		},
		{
			name: "floatcmp exact comparison",
			file: "internal/core/bad.go",
			src: `package core

func Beats(delayA, delayB float64) bool { return delayA <= delayB }
`,
			want: "units.AlmostLE",
		},
		{
			name: "unitcheck dimension mismatch",
			file: "internal/core/bad.go",
			src: `package core

func Sum(delay, rateBps float64) float64 { return delay + rateBps }
`,
			want: "cross-dimension addition",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeModule(t, map[string]string{tc.file: tc.src})
			out, ok := vetModule(t, bin, dir)
			if ok {
				t.Fatalf("vet passed on a module seeded with a %s violation", tc.name)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("vet output does not contain %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestCleanModulePasses checks the other side of the gate: conformant code
// (named constants, tolerance comparisons, seeded RNG plumbing) vets clean.
func TestCleanModulePasses(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/core/good.go": `package core

// defaultTTRT is the target token rotation time (seconds).
const defaultTTRT = 4e-3

func Later(delayA, delayB float64) bool { return delayA < delayB }
`,
	})
	if out, ok := vetModule(t, bin, dir); !ok {
		t.Fatalf("vet failed on a clean module:\n%s", out)
	}
}

// TestRepoIsClean runs the suite over this repository: the tree must stay at
// zero findings so the vet gate keeps meaning "no new violations".
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repository vet sweep in -short mode")
	}
	bin := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if out, ok := vetModule(t, bin, root); !ok {
		t.Fatalf("fafvet reports findings on the repository:\n%s", out)
	}
}
