package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// buildTool compiles the fafvet binary into a temporary directory and
// returns its path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "fafvet")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building fafvet: %v\n%s", err, out)
	}
	return bin
}

// vetModule runs `go vet -vettool=bin ./...` inside dir and returns the
// combined output and whether vet succeeded.
func vetModule(t *testing.T, bin, dir string) (string, bool) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err == nil
}

// writeModule materializes a throwaway module named fafnet so the analyzers'
// path-based scoping applies to its packages.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module fafnet\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSeededViolationsFail re-introduces one violation per analyzer into a
// scratch module and checks that the suite rejects each: the zero-findings
// baseline over this repository is only meaningful if the gate actually
// trips.
func TestSeededViolationsFail(t *testing.T) {
	bin := buildTool(t)

	cases := []struct {
		name  string
		files map[string]string
		want  string // diagnostic substring expected in the vet output
	}{
		{
			name: "randsrc global rand",
			files: map[string]string{"internal/des/bad.go": `package des

import "math/rand"

func Jitter() float64 { return rand.Float64() }
`},
			want: "breaks seeded replay",
		},
		{
			name: "epslit raw tolerance literal",
			files: map[string]string{"internal/core/bad.go": `package core

var ttrt = 4e-3
`},
			want: "raw physical literal",
		},
		{
			name: "floatcmp exact comparison",
			files: map[string]string{"internal/core/bad.go": `package core

func Beats(delayA, delayB float64) bool { return delayA <= delayB }
`},
			want: "units.AlmostLE",
		},
		{
			name: "unitcheck dimension mismatch",
			files: map[string]string{"internal/core/bad.go": `package core

func Sum(delay, rateBps float64) float64 { return delay + rateBps }
`},
			want: "cross-dimension addition",
		},
		{
			// flowdims needs two packages: the unit of Span's result is only
			// known through the fact file exported when vetting package a.
			name: "flowdims cross-package unit flow",
			files: map[string]string{
				"internal/core/a/a.go": `package a

// Span returns the gap between two delays.
func Span(startDelay, endDelay float64) float64 { return endDelay - startDelay }
`,
				"internal/core/b/b.go": `package b

import "fafnet/internal/core/a"

func Use(aDelay, bDelay float64) float64 {
	var frameBits float64
	frameBits = a.Span(aDelay, bDelay)
	return frameBits
}
`,
			},
			want: `seconds value flows into "frameBits"`,
		},
		{
			name: "desorder goroutine in event handler",
			files: map[string]string{"internal/des/bad.go": `package des

type Sim struct{}

func (s *Sim) Schedule(t float64, fire func()) error { fire(); _ = t; return nil }

func Chatter(s *Sim, done chan int) error {
	return s.Schedule(1, func() {
		go func() { done <- 1 }()
	})
}
`},
			want: "goroutine spawned inside a DES event handler",
		},
		{
			name: "lockorder wait under mutex",
			files: map[string]string{"internal/signaling/bad.go": `package signaling

import "sync"

type Srv struct {
	mu sync.Mutex
	wg sync.WaitGroup
}

func (s *Srv) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wg.Wait()
}
`},
			want: "WaitGroup.Wait while s.mu is held",
		},
		{
			// guardedby needs two packages: the annotation on Table.Rows
			// travels to the consumer as an exported fact.
			name: "guardedby cross-package unlocked access",
			files: map[string]string{
				"internal/state/state.go": `package state

import "sync"

// Table is shared state with an exported guard.
type Table struct {
	Mu sync.Mutex
	// Rows is the live row set. guarded by Mu.
	Rows map[string]int
}
`,
				"internal/user/user.go": `package user

import "fafnet/internal/state"

func Bad(t *state.Table) int { return t.Rows["x"] }
`,
			},
			want: "accessed without holding",
		},
		{
			name: "golife unjoined goroutine",
			files: map[string]string{"internal/daemon/bad.go": `package daemon

func Watch() {
	go func() {
		for {
		}
	}()
}
`},
			want: "no provable stop path",
		},
		{
			// errdrop matches obs.AuditLog by its module path, so the scratch
			// module (named fafnet) can pose its own.
			name: "errdrop dropped audit sync",
			files: map[string]string{
				"internal/obs/obs.go": `package obs

// AuditLog poses as the real audit log.
type AuditLog struct{}

// Sync flushes.
func (l *AuditLog) Sync() error { return nil }
`,
				"internal/daemon/bad.go": `package daemon

import "fafnet/internal/obs"

func Stop(l *obs.AuditLog) {
	_ = l.Sync()
}
`,
			},
			want: "the error from (obs.AuditLog).Sync is dropped",
		},
		{
			name: "hotpath allocation on an annotated path",
			files: map[string]string{"internal/hot/bad.go": `package hot

//fafvet:hotpath
func Eval(xs []float64) []float64 {
	return append(xs, 1)
}
`},
			want: "append may grow its backing array",
		},
		{
			// hotpath needs two packages here: the callee is unproven because
			// package k exports no clean fact for it.
			name: "hotpath cross-package unproven callee",
			files: map[string]string{
				"internal/k/k.go": `package k

// Build allocates.
func Build(n int) []float64 { return make([]float64, n) }
`,
				"internal/hot/bad.go": `package hot

import "fafnet/internal/k"

//fafvet:hotpath
func Eval() float64 { return k.Build(1)[0] }
`,
			},
			want: "is not proven hot-path-safe",
		},
		{
			name: "atomicvisit mixed plain and atomic access",
			files: map[string]string{"internal/stats/bad.go": `package stats

import "sync/atomic"

type Ctr struct{ n uint64 }

func (c *Ctr) Inc() { atomic.AddUint64(&c.n, 1) }

func (c *Ctr) Read() uint64 { return c.n }
`},
			want: "mixed access tears",
		},
		{
			// atomicvisit needs two packages: the counter's atomic contract
			// reaches the consumer as an exported fact.
			name: "atomicvisit cross-package plain access",
			files: map[string]string{
				"internal/stats/stats.go": `package stats

import "sync/atomic"

// Hits counts admissions.
var Hits uint64

// Bump records one.
func Bump() { atomic.AddUint64(&Hits, 1) }
`,
				"internal/view/view.go": `package view

import "fafnet/internal/stats"

func Snapshot() uint64 { return stats.Hits }
`,
			},
			want: "accessed with sync/atomic in its declaring package fafnet/internal/stats but plainly here",
		},
		{
			name: "errdrop dropped ring release",
			files: map[string]string{"internal/fddi/bad.go": `package fddi

// Ring poses as the bandwidth bookkeeper.
type Ring struct{}

// Release frees id's allocation.
func (r *Ring) Release(id string) bool { return id != "" }

func Drop(r *Ring) {
	r.Release("c1")
}
`},
			want: "the bool from fddi.Ring.Release is dropped",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeModule(t, tc.files)
			out, ok := vetModule(t, bin, dir)
			if ok {
				t.Fatalf("vet passed on a module seeded with a %s violation", tc.name)
			}
			if !strings.Contains(out, tc.want) {
				t.Errorf("vet output does not contain %q:\n%s", tc.want, out)
			}
		})
	}
}

// TestCleanModulePasses checks the other side of the gate: conformant code
// (named constants, tolerance comparisons, seeded RNG plumbing) vets clean.
func TestCleanModulePasses(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t, map[string]string{
		"internal/core/good.go": `package core

// defaultTTRT is the target token rotation time (seconds).
const defaultTTRT = 4e-3

func Later(delayA, delayB float64) bool { return delayA < delayB }
`,
	})
	if out, ok := vetModule(t, bin, dir); !ok {
		t.Fatalf("vet failed on a clean module:\n%s", out)
	}
}

// TestAnalyzersListing checks the -analyzers machine-readable inventory
// against the registry: same names in the same order, a doc line for every
// entry, and the declared fact types for the fact-exporting analyzers.
func TestAnalyzersListing(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-analyzers").Output()
	if err != nil {
		t.Fatalf("fafvet -analyzers: %v", err)
	}
	var list []struct {
		Name  string   `json:"name"`
		Doc   string   `json:"doc"`
		Facts []string `json:"facts"`
	}
	if err := json.Unmarshal(out, &list); err != nil {
		t.Fatalf("parsing -analyzers output: %v\n%s", err, out)
	}
	reg := suite()
	if len(list) != len(reg) {
		t.Fatalf("-analyzers lists %d analyzers, registry has %d", len(list), len(reg))
	}
	for i, a := range reg {
		if list[i].Name != a.Name {
			t.Errorf("entry %d = %q, want %q", i, list[i].Name, a.Name)
		}
		if list[i].Doc == "" {
			t.Errorf("entry %q has an empty doc line", list[i].Name)
		}
		if !reflect.DeepEqual(list[i].Facts, a.FactTypes) {
			t.Errorf("entry %q facts = %v, want %v", list[i].Name, list[i].Facts, a.FactTypes)
		}
		if a.ExportsFacts && len(a.FactTypes) == 0 {
			t.Errorf("analyzer %q exports facts but declares no FactTypes", a.Name)
		}
	}
}

// TestRepoIsClean runs the suite over this repository in driver mode with
// the committed baseline: the tree must stay at zero non-baselined findings
// so the vet gate keeps meaning "no new violations", and the baseline must
// stay fresh (stale entries are findings too).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repository vet sweep in -short mode")
	}
	bin := buildTool(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-baseline=.fafvet-baseline.json", "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("fafvet reports findings on the repository: %v\n%s", err, out)
	}
}
