// Command fafvet is this repository's static-analysis suite, run as a vet
// tool:
//
//	go build -o bin/fafvet ./cmd/fafvet
//	go vet -vettool=$(pwd)/bin/fafvet ./...
//
// It bundles four analyzers that enforce the correctness conventions the Go
// type system cannot see (README "Static analysis & unit conventions"):
//
//	unitcheck  dimensional consistency of float64 seconds/bits/bps
//	floatcmp   no exact ==/<=/>= between computed physical quantities
//	epslit     no raw tolerance/physical-constant literals
//	randsrc    no unseeded randomness or wall-clock reads in simulators
//
// Individual analyzers can be disabled with -<name>=false. Findings are
// suppressed in source with a justified comment:
//
//	//lint:allow <analyzer> <reason>
package main

import (
	"fafnet/internal/lint"
	"fafnet/internal/lint/epslit"
	"fafnet/internal/lint/floatcmp"
	"fafnet/internal/lint/randsrc"
	"fafnet/internal/lint/unitcheck"
)

func main() {
	lint.Main(
		unitcheck.Analyzer,
		floatcmp.Analyzer,
		epslit.Analyzer,
		randsrc.Analyzer,
	)
}
