// Command fafvet is this repository's static-analysis suite. It runs two
// ways. As a vet tool, per package:
//
//	go build -o bin/fafvet ./cmd/fafvet
//	go vet -vettool=$(pwd)/bin/fafvet ./...
//
// And as a standalone driver over package patterns, which re-invokes go vet
// against itself, aggregates diagnostics across packages, applies the
// committed baseline, and emits text, JSON or SARIF 2.1.0:
//
//	bin/fafvet -baseline=.fafvet-baseline.json ./...
//	bin/fafvet -format=sarif -o fafvet.sarif ./...
//
// It bundles twelve analyzers that enforce the correctness conventions the
// Go type system cannot see (README "Static analysis & unit conventions"):
//
//	unitcheck    dimensional consistency of float64 seconds/bits/bps
//	floatcmp     no exact ==/<=/>= between computed physical quantities
//	epslit       no raw tolerance/physical-constant literals
//	randsrc      no unseeded randomness or wall-clock reads in simulators
//	flowdims     interprocedural unit dataflow via exported per-package facts
//	desorder     no goroutines/channels/sleeps/global writes in DES handlers
//	lockorder    repo-wide lock-order cycles, no blocking calls under a lock
//	guardedby    "guarded by <mu>" field annotations hold at every access
//	golife       every goroutine has a provable stop path
//	errdrop      no dropped errors on audit, deadline, flush or release calls
//	hotpath      //fafvet:hotpath functions are transitively allocation-,
//	             blocking- and wall-clock-free
//	atomicvisit  a variable accessed through sync/atomic anywhere is accessed
//	             atomically everywhere
//
// The driver's -format=dot mode additionally dumps the whole-program lock
// graph (lockorder's cross-package acquisition edges) as Graphviz:
//
//	bin/fafvet -format=dot -o LOCKGRAPH.dot ./...
//
// -analyzers prints the machine-readable inventory (name, doc line, exported
// fact types) as JSON. Individual analyzers can be disabled with
// -<name>=false. Findings are suppressed in source with a justified comment
// (unused suppressions are themselves findings):
//
//	//lint:allow <analyzer> <reason>
package main

import "fafnet/internal/lint"

func main() {
	lint.Main(suite()...)
}
