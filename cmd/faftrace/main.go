// Command faftrace validates the analytic worst-case bounds (experiment E3
// in DESIGN.md): it admits a scenario's connections through the real CAC,
// then replays their declared traffic through the packet-level FDDI-ATM-FDDI
// simulator and reports measured delays against the analytic bounds. Every
// measured delay must stay below its bound.
//
// Usage:
//
//	faftrace [-scenario file.json] [-duration 2] [-seed 1] [-random-phases]
package main

import (
	"flag"
	"fmt"
	"os"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/packetsim"
	"fafnet/internal/scenario"
	"fafnet/internal/topo"
)

func main() {
	var (
		path     = flag.String("scenario", "", "scenario JSON file (default: built-in demo)")
		duration = flag.Float64("duration", 2, "simulated seconds")
		seed     = flag.Int64("seed", 1, "random seed for phase staggering")
		random   = flag.Bool("random-phases", false, "stagger source phases randomly")
		hist     = flag.Bool("hist", false, "print per-connection delay histograms")
		async    = flag.Int("async", 0, "flood each host with this many max-size async frames per TTRT")
		metrics  = flag.Bool("metrics-dump", false, "write a Prometheus-format metrics snapshot to stderr after the run")
	)
	flag.Parse()
	showHist = *hist
	asyncBackground = *async
	err := run(*path, *duration, *seed, *random)
	if *metrics {
		// Stderr keeps the stdout report clean; dumped even on failure so a
		// bound violation still comes with its CAC counters.
		if werr := obs.Default.WritePrometheus(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "faftrace: metrics dump:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "faftrace:", err)
		os.Exit(1)
	}
}

func run(path string, duration float64, seed int64, random bool) error {
	var (
		s   scenario.Scenario
		err error
	)
	if path == "" {
		s = scenario.Default()
	} else if s, err = scenario.Load(path); err != nil {
		return err
	}

	topoCfg := s.TopologyConfig()
	net, err := topo.NewNetwork(topoCfg)
	if err != nil {
		return err
	}
	opts, err := s.CACOptions()
	if err != nil {
		return err
	}
	ctl, err := core.NewController(net, opts)
	if err != nil {
		return err
	}

	for _, a := range s.Actions {
		if a.Release != "" {
			if !ctl.Release(a.Release) {
				fmt.Printf("note: release of %s ignored; no such admitted connection\n", a.Release)
			}
			continue
		}
		spec, err := a.Admit.Spec()
		if err != nil {
			return err
		}
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			return err
		}
		if !dec.Admitted {
			fmt.Printf("note: %s rejected by CAC (%s); not simulated\n", spec.ID, dec.Reason)
		}
	}
	conns := ctl.Connections()
	if len(conns) == 0 {
		return fmt.Errorf("no admitted connections to trace")
	}

	fmt.Printf("tracing %d connections for %.1f simulated seconds (seed %d, random phases %v)\n\n",
		len(conns), duration, seed, random)
	res, err := packetsim.Run(packetsim.Config{
		Topology:        topoCfg,
		Connections:     conns,
		Duration:        duration,
		Seed:            seed,
		RandomPhases:    random,
		AsyncBackground: asyncBackground,
	})
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %8s %12s %12s %12s %12s %7s\n",
		"conn", "frames", "mean (ms)", "max (ms)", "bound (ms)", "headroom", "ok")
	violations := 0
	for _, c := range res.PerConn {
		headroom := "-"
		if c.Delays.Max() > 0 {
			headroom = fmt.Sprintf("%.1fx", c.Bound/c.Delays.Max())
		}
		ok := "yes"
		if !c.WithinBound() {
			ok = "VIOLATED"
			violations++
		}
		fmt.Printf("%-10s %8d %12.3f %12.3f %12.3f %12s %7s\n",
			c.ID, c.FramesDelivered, c.Delays.Mean()*1e3, c.Delays.Max()*1e3, c.Bound*1e3, headroom, ok)
	}
	fmt.Println()
	if showHist {
		for _, c := range res.PerConn {
			if c.Hist == nil {
				continue
			}
			fmt.Printf("%s: delay distribution over [0, bound) in seconds\n%s\n", c.ID, c.Hist.Render(40))
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d connections exceeded their analytic bound", violations)
	}
	fmt.Println("all measured delays within analytic worst-case bounds")
	return nil
}

// Flag-backed globals shared with the tests.
var (
	showHist        bool
	asyncBackground int
)
