package main

import "testing"

func TestRunDefaultScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("packet simulation in -short mode")
	}
	if err := run("", 0.3, 1, false); err != nil {
		t.Fatalf("default trace failed: %v", err)
	}
}

func TestRunRandomPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("packet simulation in -short mode")
	}
	if err := run("", 0.3, 7, true); err != nil {
		t.Fatalf("random-phase trace failed: %v", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/nonexistent.json", 0.1, 1, false); err == nil {
		t.Error("missing scenario should error")
	}
}
