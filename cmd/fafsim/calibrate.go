package main

import (
	"fmt"
	"os"

	"fafnet/internal/core"
	"fafnet/internal/sim"
)

// runCalibrate executes the calibration sweep (E11 in EXPERIMENTS.md): for
// each randomized scenario it admits a multi-class workload, replays the
// recorded trace to confirm bit-identity, and cross-checks every admitted
// connection's analytic Eq. 7 delay bound against packet-level measured
// delays. It prints one row per scenario, a per-class summary with AP
// (Wilson 95% CI), worst tightness, MAPE and Pearson, and returns an error —
// nonzero exit — on any bound violation or replay mismatch.
func runCalibrate(scenarios int, seed int64, searchIters int) error {
	fmt.Println("# E11: calibration sweep — analytic bounds vs packet-level measurement")
	fmt.Println("scenario\tseed\tclasses\tadmitted\tmeasured\tworst_tightness\tviolations\treplay")
	res, err := sim.Calibrate(sim.CalibrateConfig{
		Scenarios: scenarios,
		Seed:      seed,
		CAC:       core.Options{SearchIters: searchIters},
		Progress: func(out sim.ScenarioOutcome) {
			replay := "ok"
			if !out.ReplayMatch {
				replay = "MISMATCH"
			}
			fmt.Printf("%d\t%d\t%d\t%d\t%d\t%.4f\t%d\t%s\n",
				out.Index, out.Seed, out.Classes, out.Admitted, out.Measured,
				out.WorstTightness, out.Violations, replay)
		},
	})
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("class\tAP\tci95\tconns\tworst_tightness\tmape_pct\tpearson")
	rows := append(res.PerClass, res.Overall)
	for i := range rows {
		c := &rows[i]
		fmt.Printf("%s\t%.4f\t%.4f\t%d\t%.4f\t%.1f\t%.3f\n",
			c.Class, c.AP.Value(), c.AP.CI95(), c.Connections,
			c.WorstTightness, c.MAPE, c.Pearson)
	}
	fmt.Printf("\n# %d scenarios, %d measured connections, %d violations, %d replay mismatches\n",
		len(res.Scenarios), res.Overall.Connections, res.Violations, res.ReplayMismatches)

	if !res.Passed() {
		return fmt.Errorf("calibration FAILED: %d bound violations, %d replay mismatches",
			res.Violations, res.ReplayMismatches)
	}
	fmt.Fprintln(os.Stderr, "fafsim: calibration passed: all measured delays within analytic bounds; replays bit-identical")
	return nil
}
