package main

import (
	"net"
	"testing"

	"fafnet/internal/core"
	"fafnet/internal/signaling"
	"fafnet/internal/topo"
)

// TestDaemonWorkloadLeavesServerClean runs the daemon experiment against an
// in-process signaling server: the workload must make admission progress and
// must release everything it admitted before returning.
func TestDaemonWorkloadLeavesServerClean(t *testing.T) {
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.NewController(net0, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := signaling.NewServer(ctl)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	}()

	res, err := daemonWorkload{Addr: l.Addr().String(), Requests: 30, Seed: 1}.run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Error("workload admitted nothing")
	}
	if res.TransportErrors != 0 || res.Ambiguous != 0 {
		t.Errorf("fault-free transport produced errors: %+v", res)
	}
	if res.Admitted+res.Rejected != 30 {
		t.Errorf("decided %d of 30 requests: %+v", res.Admitted+res.Rejected, res)
	}
	if got := ctl.Active(); got != 0 {
		t.Errorf("workload left %d connections admitted, want 0", got)
	}
	// One attempt per admit at minimum; zero means the deferred stats
	// capture missed the returned value.
	if res.Stats.Attempts < 30 {
		t.Errorf("stats report %d attempts for 30 requests", res.Stats.Attempts)
	}

	// Determinism: the same seed produces the same decision mix.
	res2, err := daemonWorkload{Addr: l.Addr().String(), Requests: 30, Seed: 1}.run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Admitted != res.Admitted || res2.Rejected != res.Rejected {
		t.Errorf("same seed, different outcomes: %+v vs %+v", res2, res)
	}
}

func TestRunDaemonValidation(t *testing.T) {
	if err := runDaemon("", 10, 1); err == nil {
		t.Error("missing -daemon-addr should fail")
	}
	if err := runDaemon("127.0.0.1:1", 0, 1); err == nil {
		t.Error("non-positive -requests should fail")
	}
}
