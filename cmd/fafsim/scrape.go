package main

import (
	"bufio"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// histScraper diffs one labeled Prometheus histogram between two scrapes of
// a /metrics endpoint, so the load driver can report the daemon's own view
// of admit latency over exactly the measurement window — client-side
// quantiles include the transport, these do not.
type histScraper struct {
	url    string
	metric string // family name, e.g. fafnet_signaling_op_seconds
	label  string // rendered label that must be present, e.g. op="admit"

	before, after map[float64]uint64 // upper bound -> cumulative count

	// resets counts windows invalidated because a cumulative counter went
	// backwards between the snapshots — the signature of a daemon restart.
	// The uint64 bucket deltas would otherwise wrap to absurd totals.
	resets int
}

func (s *histScraper) snapshotBefore() (err error) {
	s.before, err = s.scrape()
	return err
}

func (s *histScraper) snapshotAfter() (err error) {
	s.after, err = s.scrape()
	return err
}

// scrape fetches the endpoint and collects the matching family's
// cumulative bucket counts.
func (s *histScraper) scrape() (map[float64]uint64, error) {
	client := http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(s.url)
	if err != nil {
		return nil, err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scraping %s: %s", s.url, resp.Status)
	}
	prefix := s.metric + "_bucket{"
	out := make(map[float64]uint64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		end := strings.IndexByte(line, '}')
		if end < 0 {
			continue
		}
		labels := line[len(prefix):end]
		if !strings.Contains(labels, s.label) {
			continue
		}
		bound, ok := parseLE(labels)
		if !ok {
			continue
		}
		count, err := strconv.ParseUint(strings.TrimSpace(line[end+1:]), 10, 64)
		if err != nil {
			continue
		}
		out[bound] = count
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no %s buckets with %s at %s", s.metric, s.label, s.url)
	}
	return out, nil
}

// parseLE extracts the le="..." bound from a rendered label string.
func parseLE(labels string) (float64, bool) {
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return 0, false
	}
	rest := labels[i+len(`le="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return 0, false
	}
	raw := rest[:j]
	if raw == "+Inf" {
		return math.Inf(1), true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// deltaQuantiles estimates quantiles of the latency observed BETWEEN the
// two snapshots by differencing the cumulative bucket counts and
// interpolating linearly inside the bucket that crosses each rank — the
// standard Prometheus histogram_quantile estimate. Returns ok=false when
// the histogram did not move over the window, or when a counter went
// backwards between the snapshots (daemon restart): cumulative counts only
// ever grow, so a decrease means the window straddles a counter reset and
// the uint64 deltas would wrap instead of measuring anything.
func (s *histScraper) deltaQuantiles(qs []float64) ([]float64, uint64, bool) {
	if s.before == nil || s.after == nil {
		return nil, 0, false
	}
	bounds := make([]float64, 0, len(s.after))
	for b := range s.after {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	deltas := make([]uint64, len(bounds))
	var total uint64
	for i, b := range bounds {
		if s.after[b] < s.before[b] {
			s.resets++
			return nil, 0, false
		}
		d := s.after[b] - s.before[b]
		deltas[i] = d
		if d > total {
			total = d // cumulative: the +Inf (last) delta is the total
		}
	}
	if total == 0 {
		return nil, 0, false
	}
	out := make([]float64, len(qs))
	for k, q := range qs {
		rank := q * float64(total)
		out[k] = bounds[len(bounds)-1]
		for i, b := range bounds {
			if float64(deltas[i]) < rank {
				continue
			}
			lo, cumLo := 0.0, uint64(0)
			if i > 0 {
				lo, cumLo = bounds[i-1], deltas[i-1]
			}
			if math.IsInf(b, 1) {
				out[k] = lo // open-ended bucket: report its lower edge
				break
			}
			span := float64(deltas[i] - cumLo)
			if span > 0 {
				out[k] = lo + (b-lo)*(rank-float64(cumLo))/span
			} else {
				out[k] = b
			}
			break
		}
	}
	return out, total, true
}
