package main

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"math/rand"

	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
	"fafnet/internal/topo"
)

// daemonWorkload drives a live fafcacd over the signaling protocol instead
// of an in-process controller: the same kind of admit/release churn the DES
// applies, but through the retrying client, so it measures the deployed
// daemon (and exercises the transport) rather than the library. Results are
// not comparable to the DES sweeps — there is no simulated clock, so
// lifetimes are turnover-driven — but the admission counters and the final
// clean release make it a useful end-to-end smoke against a real deployment.
type daemonWorkload struct {
	Addr     string
	Requests int
	Seed     int64
}

// daemonResult summarizes one daemon-driven run.
type daemonResult struct {
	Admitted, Rejected int
	// Ambiguous counts admits whose response was lost after the request may
	// have reached the daemon (signaling.ErrPossiblyCommitted); they are
	// resolved by release before the run ends.
	Ambiguous int
	// TransportErrors counts operations that failed outright after retries.
	TransportErrors int
	Stats           signaling.ClientStats
}

// run executes the workload: seeded random src/dst churn over the default
// topology's hosts, releasing connections as hosts are needed again, and
// releasing everything before returning so the daemon ends clean.
// Named results so the deferred stats capture lands in the value actually
// returned, including on error paths.
func (w daemonWorkload) run() (res daemonResult, err error) {
	client, err := signaling.DialConfig(signaling.ClientConfig{
		Addr:        w.Addr,
		DialTimeout: 5 * time.Second,
		ReadTimeout: 30 * time.Second,
		Retry:       signaling.DefaultRetryPolicy(),
	})
	if err != nil {
		return res, err
	}
	defer func() { res.Stats = client.Stats(); client.Close() }()

	cfg := topo.Default()
	rng := rand.New(rand.NewSource(w.Seed))
	type host struct{ ring, index int }
	free := make([]host, 0, cfg.NumRings*cfg.HostsPerRing)
	for r := 0; r < cfg.NumRings; r++ {
		for h := 0; h < cfg.HostsPerRing; h++ {
			free = append(free, host{r, h})
		}
	}
	active := make(map[string]host)

	releaseOne := func(id string) error {
		if _, err := client.Release(id); err != nil {
			res.TransportErrors++
			return err
		}
		free = append(free, active[id])
		delete(active, id)
		return nil
	}
	oldestActive := func() string {
		ids := make([]string, 0, len(active))
		for id := range active {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		return ids[0]
	}

	for i := 0; i < w.Requests; i++ {
		if len(free) == 0 {
			if err := releaseOne(oldestActive()); err != nil {
				continue
			}
		}
		src := free[rng.Intn(len(free))]
		dstRing := rng.Intn(cfg.NumRings - 1)
		if dstRing >= src.ring {
			dstRing++ // uniform over remote rings
		}
		id := fmt.Sprintf("fafsim-%d-%d", w.Seed, i)
		req := scenario.Request{
			ID:      id,
			SrcRing: src.ring, SrcHost: src.index,
			DstRing: dstRing, DstHost: rng.Intn(cfg.HostsPerRing),
			DeadlineMillis: 30 + 40*rng.Float64(),
			Source:         scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
		}
		dec, err := client.Admit(req)
		switch {
		case err == nil && dec.Admitted:
			res.Admitted++
			// Reserve the host until release.
			for j, h := range free {
				if h == src {
					free = append(free[:j], free[j+1:]...)
					break
				}
			}
			active[id] = src
		case err == nil:
			res.Rejected++
		default:
			// Both ambiguity and plain transport failure are settled the same
			// way: release is idempotent, so one successful release round
			// trip proves the id holds nothing. Count them separately.
			if isPossiblyCommitted(err) {
				res.Ambiguous++
			} else {
				res.TransportErrors++
			}
			if _, rerr := client.Release(id); rerr != nil {
				res.TransportErrors++
			}
		}
		// Turn hosts over so later requests see a loaded-but-moving system.
		if len(active) > 0 && i%3 == 2 {
			_ = releaseOne(oldestActive())
		}
	}
	for len(active) > 0 {
		if err := releaseOne(oldestActive()); err != nil {
			return res, fmt.Errorf("final drain: %w", err)
		}
	}
	return res, nil
}

// isPossiblyCommitted reports whether err carries the lost-response admit
// ambiguity.
func isPossiblyCommitted(err error) bool {
	return errors.Is(err, signaling.ErrPossiblyCommitted)
}

// runDaemon is the -experiment daemon entry point.
func runDaemon(addr string, requests int, seed int64) error {
	if addr == "" {
		return fmt.Errorf("-experiment daemon requires -daemon-addr")
	}
	if requests <= 0 {
		return fmt.Errorf("-requests %d must be positive", requests)
	}
	fmt.Printf("# daemon workload against %s (%d requests, seed %d)\n", addr, requests, seed)
	res, err := daemonWorkload{Addr: addr, Requests: requests, Seed: seed}.run()
	if err != nil {
		return err
	}
	decided := res.Admitted + res.Rejected
	ap := 0.0
	if decided > 0 {
		ap = float64(res.Admitted) / float64(decided)
	}
	fmt.Println("admitted\trejected\tambiguous\ttransport_errors\tAP\tattempts\tretries\tredials")
	fmt.Printf("%d\t%d\t%d\t%d\t%.4f\t%d\t%d\t%d\n",
		res.Admitted, res.Rejected, res.Ambiguous, res.TransportErrors, ap,
		res.Stats.Attempts, res.Stats.Retries, res.Stats.Redials)
	return nil
}
