package main

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"fafnet/internal/scenario"
	"fafnet/internal/signaling"
	"fafnet/internal/topo"
)

// loadConfig configures the multi-worker daemon load driver (-experiment
// daemon with -daemon-mode closed or open). Unlike the legacy single-worker
// workload it is built to push millions of decisions through a live fafcacd
// and report sustained throughput plus tail latency, so it separates a
// warmup window (excluded from statistics) from the measurement window and
// runs every worker over its own connection with its own seeded generator.
type loadConfig struct {
	Addr    string
	Mode    string // "closed" or "open"
	Workers int
	// Requests bounds the run by total decisions across all workers
	// (including warmup); Duration bounds the measurement window by wall
	// time. At least one must be set; the first to trip stops the run.
	Requests int
	Duration time.Duration
	Warmup   time.Duration
	// Rate is the aggregate open-loop arrival rate in decisions per second,
	// split evenly across workers. Ignored in closed mode.
	Rate float64
	Seed int64
	// PreviewFrac is the fraction of iterations that issue a preview (a
	// non-committing admission decision) from a small recurring class
	// palette instead of admit/release churn. Previews leave the admitted
	// state untouched, which is what lets the daemon's verdict cache answer
	// repeats without re-running the probe analysis — the high-throughput
	// regime. 0 is pure churn (every decision pays a full analysis); 1 is
	// pure preview (peak decision rate against a standing set).
	PreviewFrac float64
	// Prefill admits and holds this many connections per worker before the
	// loop starts, so previews are judged against a loaded network rather
	// than an empty one. Held until the final drain.
	Prefill int
	// Batch > 1 sends previews as OpPreviewBatch requests of this size: one
	// round trip and one JSON frame carry Batch decisions, which is what
	// lifts throughput past the per-message transport cost. Latency samples
	// then measure the whole round trip, not a single decision.
	Batch int
	// MetricsURL, when set, is the daemon's /metrics endpoint; the driver
	// scrapes it at both edges of the measurement window and reports
	// server-side admit latency quantiles from the histogram bucket deltas.
	MetricsURL string
}

// loadResult aggregates the run. Totals cover the whole run; Measured,
// Window and Lats cover only the measurement window.
type loadResult struct {
	Admitted, Rejected, Ambiguous, TransportErrors int
	Releases                                       int
	// Previews counts preview decisions (included in Measured); Prefilled
	// counts the standing connections established before the loop (excluded
	// from every statistic).
	Previews  int
	Prefilled int
	Measured  int
	Window    time.Duration
	// Lats holds client-observed admit latencies in seconds from the
	// measurement window. In open mode each is measured from the request's
	// scheduled start, so queueing behind a slow daemon is charged to the
	// daemon (no coordinated omission).
	Lats []float64
	// MaxLag is the worst distance any open-mode worker fell behind its
	// arrival schedule; a persistently growing value means the offered rate
	// exceeds what the daemon sustains.
	MaxLag time.Duration
	Stats  signaling.ClientStats
}

// loadShared is the cross-worker coordination block: the stop latch, the
// recording flag that opens the measurement window, and the global decision
// counter that enforces the -requests bound.
type loadShared struct {
	stop     chan struct{}
	stopOnce sync.Once
	stopAt   atomic.Int64 // UnixNano when the stop latch fired
	record   atomic.Bool
	decided  atomic.Int64
	target   int64
}

func (sh *loadShared) fireStop() {
	sh.stopOnce.Do(func() {
		sh.stopAt.Store(time.Now().UnixNano())
		close(sh.stop)
	})
}

func (sh *loadShared) stopped() bool {
	select {
	case <-sh.stop:
		return true
	default:
		return false
	}
}

// countDecisions advances the global counter and trips the stop latch when
// the request bound is reached.
func (sh *loadShared) countDecisions(n int) {
	if v := sh.decided.Add(int64(n)); sh.target > 0 && v >= sh.target {
		sh.fireStop()
	}
}

// loadHost identifies one source host slot owned by a worker.
type loadHost struct{ ring, index int }

// loadWorker drives one connection's worth of admit/release churn. Source
// hosts are partitioned across workers so no two workers contend for the
// same host (a cross-worker ReasonHostBusy would measure the generator, not
// the daemon); destinations may be any remote-ring host.
type loadWorker struct {
	id    int
	cfg   loadConfig
	hosts []loadHost
	// pool is the global set of hosts left free after every worker's
	// prefill; preview sources draw from it (previews do not occupy hosts,
	// so the pool is shared by all workers without conflict).
	pool []loadHost
	sh   *loadShared
	res  loadResult
}

// previewClasses is the per-worker palette size: small enough that the
// daemon's verdict cache holds every (state, class) pair after one warm
// pass, large enough to exercise eviction-free variety.
const previewClasses = 16

// run executes the worker loop until the shared stop latch fires, then
// releases everything it still holds so the daemon ends clean.
func (w *loadWorker) run() (err error) {
	client, err := signaling.DialConfig(signaling.ClientConfig{
		Addr:        w.cfg.Addr,
		DialTimeout: 5 * time.Second,
		ReadTimeout: 30 * time.Second,
		Retry:       signaling.DefaultRetryPolicy(),
	})
	if err != nil {
		return err
	}
	defer func() { w.res.Stats = client.Stats(); client.Close() }()

	cfg := topo.Default()
	rng := rand.New(rand.NewSource(w.cfg.Seed + int64(w.id)*9973))
	free := append([]loadHost(nil), w.hosts...)
	active := make(map[string]loadHost)
	// FIFO of admitted ids: entries are only appended on admit and popped on
	// release, so the front is always the oldest still-active connection.
	order := make([]string, 0, len(w.hosts))

	releaseOldest := func() error {
		id := order[0]
		order = order[1:]
		if _, err := client.Release(id); err != nil {
			w.res.TransportErrors++
			return err
		}
		w.res.Releases++
		free = append(free, active[id])
		delete(active, id)
		return nil
	}

	buildReq := func(id string, src loadHost, deadlineMillis float64) scenario.Request {
		dstRing := rng.Intn(cfg.NumRings - 1)
		if dstRing >= src.ring {
			dstRing++ // uniform over remote rings
		}
		return scenario.Request{
			ID:      id,
			SrcRing: src.ring, SrcHost: src.index,
			DstRing: dstRing, DstHost: rng.Intn(cfg.HostsPerRing),
			DeadlineMillis: deadlineMillis,
			Source:         scenario.Source{Type: "dualPeriodic", C1Kbit: 50, P1Millis: 10, C2Kbit: 10, P2Millis: 1},
		}
	}
	// Deadlines come from a small discrete set, not a continuum: real
	// deployments reuse a handful of service classes, and recurring classes
	// are what lets the verdict cache amortize repeated analyses.
	deadline := func() float64 { return 30 + 5*float64(rng.Intn(8)) }

	// Prefill: admit and hold a standing set so later decisions are judged
	// against a loaded network. Rejections rotate the host to the back and
	// move on; transport errors settle by idempotent release, like the loop.
	for k := 0; k < w.cfg.Prefill && len(free) > 0; k++ {
		src := free[0]
		id := fmt.Sprintf("fill-%d-%d-%d", w.cfg.Seed, w.id, k)
		dec, err := client.Admit(buildReq(id, src, deadline()))
		switch {
		case err == nil && dec.Admitted:
			free = free[1:]
			active[id] = src
			order = append(order, id)
			w.res.Prefilled++
		case err == nil:
			free = append(free[1:], src)
		default:
			w.res.TransportErrors++
			if _, rerr := client.Release(id); rerr != nil {
				w.res.TransportErrors++
			}
		}
	}

	// The preview palette: a fixed set of recurring request classes over
	// hosts the prefill left free. An empty pool (everything prefilled)
	// falls back to this worker's own hosts; those previews short-circuit
	// as host-busy rejects, which still measures the wire but not the
	// analysis — keep some hosts free for meaningful previews.
	var classes []scenario.Request
	if w.cfg.PreviewFrac > 0 {
		pool := w.pool
		if len(pool) == 0 {
			pool = w.hosts
		}
		if len(pool) == 0 {
			// A worker beyond the host count previews across the whole grid.
			for r := 0; r < cfg.NumRings; r++ {
				for h := 0; h < cfg.HostsPerRing; h++ {
					pool = append(pool, loadHost{r, h})
				}
			}
		}
		for k := 0; k < previewClasses; k++ {
			src := pool[rng.Intn(len(pool))]
			classes = append(classes, buildReq("", src, deadline()))
		}
	}

	var interval time.Duration
	if w.cfg.Mode == "open" {
		perWorker := w.cfg.Rate / float64(w.cfg.Workers)
		// Rate is in decisions/sec; in the pure-preview batched regime each
		// paced iteration delivers a whole batch, so iterations run at
		// rate/batch to keep the decision rate as asked.
		if w.cfg.PreviewFrac == 1 && w.cfg.Batch > 1 {
			perWorker /= float64(w.cfg.Batch)
		}
		interval = time.Duration(float64(time.Second) / perWorker)
	}
	var batchReqs []scenario.Request
	start := time.Now()

	for i := 0; !w.sh.stopped(); i++ {
		// Open-loop pacing: request i is due at start + i*interval. Waiting
		// happens only when ahead of schedule; when behind, the request
		// fires immediately and the latency clock still starts at the
		// scheduled instant.
		issueAt := time.Now()
		if w.cfg.Mode == "open" {
			sched := start.Add(time.Duration(i) * interval)
			if d := time.Until(sched); d > 0 {
				t := time.NewTimer(d)
				select {
				case <-w.sh.stop:
					t.Stop()
				case <-t.C:
				}
			} else if lag := -d; lag > w.res.MaxLag {
				w.res.MaxLag = lag
			}
			if w.sh.stopped() {
				break
			}
			// Charge latency from the scheduled start when running behind;
			// from now when the timer woke early (never negative).
			issueAt = sched
			if now := time.Now(); now.Before(issueAt) {
				issueAt = now
			}
		}

		if len(classes) > 0 && rng.Float64() < w.cfg.PreviewFrac {
			// Ids are excluded from the daemon's verdict fingerprints and
			// previews commit nothing, so the batch is built once (randomized
			// class composition, stable per-slot ids) and reused verbatim —
			// re-randomizing 512 entries per round trip would measure the
			// generator's rng and fmt, not the daemon.
			var decided int
			var err error
			if w.cfg.Batch > 1 {
				if batchReqs == nil {
					batchReqs = make([]scenario.Request, w.cfg.Batch)
					for k := range batchReqs {
						batchReqs[k] = classes[rng.Intn(len(classes))]
						batchReqs[k].ID = fmt.Sprintf("prev-%d-%d-%d", w.cfg.Seed, w.id, k)
					}
				}
				var decs []signaling.Decision
				decs, err = client.PreviewBatch(batchReqs)
				decided = len(decs)
			} else {
				req := classes[rng.Intn(len(classes))]
				req.ID = fmt.Sprintf("prev-%d-%d-%d", w.cfg.Seed, w.id, i)
				_, err = client.Preview(req)
				decided = 1
			}
			lat := time.Since(issueAt)
			if err != nil {
				// Previews commit nothing; a lost response needs no settling.
				w.res.TransportErrors++
				continue
			}
			w.res.Previews += decided
			if w.sh.record.Load() {
				w.res.Measured += decided
				// One sample per round trip: with -batch > 1 this is the
				// latency of the whole batch.
				w.res.Lats = append(w.res.Lats, lat.Seconds())
			}
			w.sh.countDecisions(decided)
			continue
		}

		if len(free) == 0 {
			if err := releaseOldest(); err != nil {
				continue
			}
		}
		src := free[rng.Intn(len(free))]
		id := fmt.Sprintf("load-%d-%d-%d", w.cfg.Seed, w.id, i)
		req := buildReq(id, src, deadline())
		dec, err := client.Admit(req)
		lat := time.Since(issueAt)
		switch {
		case err == nil && dec.Admitted:
			w.res.Admitted++
			for j, h := range free {
				if h == src {
					free = append(free[:j], free[j+1:]...)
					break
				}
			}
			active[id] = src
			order = append(order, id)
		case err == nil:
			w.res.Rejected++
		default:
			// Ambiguity and outright failure settle the same way: release
			// is idempotent, so one successful round trip proves the id
			// holds nothing.
			if isPossiblyCommitted(err) {
				w.res.Ambiguous++
			} else {
				w.res.TransportErrors++
			}
			if _, rerr := client.Release(id); rerr != nil {
				w.res.TransportErrors++
			}
		}
		if err == nil {
			if w.sh.record.Load() {
				w.res.Measured++
				w.res.Lats = append(w.res.Lats, lat.Seconds())
			}
			w.sh.countDecisions(1)
		}
		// Turn hosts over so the standing set keeps moving: a static set
		// would let every later decision hit the verdict cache against one
		// frozen state, which flatters throughput.
		if len(order) > 0 && i%3 == 2 {
			_ = releaseOldest()
		}
	}
	for len(order) > 0 {
		if err := releaseOldest(); err != nil {
			return fmt.Errorf("worker %d final drain: %w", w.id, err)
		}
	}
	return nil
}

// runDaemonLoad is the -daemon-mode closed/open entry point: validate,
// execute, report.
func runDaemonLoad(cfg loadConfig) error {
	if cfg.Addr == "" {
		return fmt.Errorf("-experiment daemon requires -daemon-addr")
	}
	if cfg.Workers <= 0 {
		return fmt.Errorf("-workers %d must be positive", cfg.Workers)
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return fmt.Errorf("set -requests or -duration to bound the run")
	}
	if cfg.Mode == "open" && cfg.Rate <= 0 {
		return fmt.Errorf("-daemon-mode open requires -rate > 0")
	}
	if cfg.PreviewFrac < 0 || cfg.PreviewFrac > 1 {
		return fmt.Errorf("-preview-frac %g must be in [0, 1]", cfg.PreviewFrac)
	}
	if cfg.Prefill < 0 {
		return fmt.Errorf("-prefill %d must not be negative", cfg.Prefill)
	}
	if cfg.Batch > signaling.MaxBatch {
		return fmt.Errorf("-batch %d exceeds the protocol maximum of %d", cfg.Batch, signaling.MaxBatch)
	}
	fmt.Printf("# daemon %s-loop load against %s (workers=%d, seed=%d, warmup=%s)\n",
		cfg.Mode, cfg.Addr, cfg.Workers, cfg.Seed, cfg.Warmup)
	total, scraper, err := executeLoad(cfg)
	if err != nil {
		return err
	}
	printLoadResult(cfg, total, scraper)
	return nil
}

// executeLoad partitions hosts, starts the workers, opens the measurement
// window after warmup, and stops on the first bound hit.
func executeLoad(cfg loadConfig) (loadResult, *histScraper, error) {
	topoCfg := topo.Default()
	totalHosts := topoCfg.NumRings * topoCfg.HostsPerRing
	// Pure-preview runs never contend for hosts, so they may oversubscribe
	// workers; anything that admits needs a disjoint host share per worker.
	if cfg.Workers > totalHosts && cfg.PreviewFrac < 1 {
		return loadResult{}, nil, fmt.Errorf("-workers %d exceeds the %d source hosts in the default topology (only -preview-frac 1 may oversubscribe)", cfg.Workers, totalHosts)
	}

	sh := &loadShared{stop: make(chan struct{}), target: int64(cfg.Requests)}
	workers := make([]*loadWorker, cfg.Workers)
	for i := range workers {
		workers[i] = &loadWorker{id: i, cfg: cfg, sh: sh}
	}
	// Round-robin the (ring, host) grid over workers: every worker gets a
	// disjoint, near-equal share of source hosts.
	slot := 0
	for r := 0; r < topoCfg.NumRings; r++ {
		for h := 0; h < topoCfg.HostsPerRing; h++ {
			w := workers[slot%cfg.Workers]
			w.hosts = append(w.hosts, loadHost{r, h})
			slot++
		}
	}
	// The shared preview pool is whatever the prefill leaves free; workers
	// that churn need at least one host of their own beyond the prefill.
	var pool []loadHost
	for _, w := range workers {
		held := cfg.Prefill
		if held > len(w.hosts) {
			held = len(w.hosts)
		}
		if cfg.PreviewFrac < 1 && len(w.hosts)-held < 1 {
			return loadResult{}, nil, fmt.Errorf("worker %d has no host left for churn: %d hosts, -prefill %d (raise hosts per worker or use -preview-frac 1)", w.id, len(w.hosts), cfg.Prefill)
		}
		pool = append(pool, w.hosts[held:]...)
	}
	for _, w := range workers {
		w.pool = pool
	}

	var scraper *histScraper
	if cfg.MetricsURL != "" {
		// Scrape the op the workload actually issues most.
		label := `op="admit"`
		if cfg.PreviewFrac > 0.5 {
			if cfg.Batch > 1 {
				label = `op="previewBatch"`
			} else {
				label = `op="preview"`
			}
		}
		scraper = &histScraper{url: cfg.MetricsURL, metric: "fafnet_signaling_op_seconds", label: label}
	}

	var windowStart atomic.Int64
	openWindow := func() {
		if scraper != nil {
			if err := scraper.snapshotBefore(); err != nil {
				fmt.Printf("# metrics scrape (start): %v\n", err)
				scraper = nil
			}
		}
		windowStart.Store(time.Now().UnixNano())
		sh.record.Store(true)
	}
	var warmT, durT *time.Timer
	if cfg.Warmup > 0 {
		warmT = time.AfterFunc(cfg.Warmup, openWindow)
	} else {
		openWindow()
	}
	if cfg.Duration > 0 {
		durT = time.AfterFunc(cfg.Warmup+cfg.Duration, sh.fireStop)
	}

	var wg sync.WaitGroup
	errs := make([]error, cfg.Workers)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *loadWorker) {
			defer wg.Done()
			errs[i] = w.run()
		}(i, w)
	}
	wg.Wait()
	sh.fireStop() // requests bound met: make sure the latch records an end time
	if warmT != nil {
		warmT.Stop()
	}
	if durT != nil {
		durT.Stop()
	}
	for _, err := range errs {
		if err != nil {
			return loadResult{}, nil, err
		}
	}
	if scraper != nil {
		if err := scraper.snapshotAfter(); err != nil {
			fmt.Printf("# metrics scrape (end): %v\n", err)
			scraper = nil
		}
	}

	var total loadResult
	for _, w := range workers {
		total.Admitted += w.res.Admitted
		total.Rejected += w.res.Rejected
		total.Previews += w.res.Previews
		total.Prefilled += w.res.Prefilled
		total.Ambiguous += w.res.Ambiguous
		total.TransportErrors += w.res.TransportErrors
		total.Releases += w.res.Releases
		total.Measured += w.res.Measured
		total.Lats = append(total.Lats, w.res.Lats...)
		if w.res.MaxLag > total.MaxLag {
			total.MaxLag = w.res.MaxLag
		}
		total.Stats.Attempts += w.res.Stats.Attempts
		total.Stats.Retries += w.res.Stats.Retries
		total.Stats.Redials += w.res.Stats.Redials
	}
	t0, t1 := windowStart.Load(), sh.stopAt.Load()
	if t0 > 0 && t1 > t0 {
		total.Window = time.Duration(t1 - t0)
	}
	return total, scraper, nil
}

// printLoadResult renders the run summary tables.
func printLoadResult(cfg loadConfig, total loadResult, scraper *histScraper) {
	throughput := 0.0
	if total.Window > 0 {
		throughput = float64(total.Measured) / total.Window.Seconds()
	}
	fmt.Println("mode\tworkers\tdecisions\twindow_s\tdecisions_per_s\tadmitted\trejected\tpreviews\tprefilled\treleases\tambiguous\ttransport_errors")
	fmt.Printf("%s\t%d\t%d\t%.3f\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		cfg.Mode, cfg.Workers, total.Measured, total.Window.Seconds(), throughput,
		total.Admitted, total.Rejected, total.Previews, total.Prefilled,
		total.Releases, total.Ambiguous, total.TransportErrors)
	if total.Measured == 0 {
		fmt.Println("# no decisions landed inside the measurement window (bound hit during warmup?)")
	}
	if len(total.Lats) > 0 {
		sort.Float64s(total.Lats)
		fmt.Println("client_admit_ms\tp50\tp90\tp99\tp999\tmax")
		fmt.Printf("\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\n",
			quantileSorted(total.Lats, 0.50)*1e3,
			quantileSorted(total.Lats, 0.90)*1e3,
			quantileSorted(total.Lats, 0.99)*1e3,
			quantileSorted(total.Lats, 0.999)*1e3,
			total.Lats[len(total.Lats)-1]*1e3)
	}
	if cfg.Mode == "open" {
		fmt.Printf("max_sched_lag_ms\t%.3f\n", total.MaxLag.Seconds()*1e3)
	}
	if scraper != nil {
		if q, count, ok := scraper.deltaQuantiles([]float64{0.50, 0.90, 0.99}); ok {
			op := strings.TrimSuffix(strings.TrimPrefix(scraper.label, `op="`), `"`)
			fmt.Printf("server_%s_ms\tp50\tp90\tp99\tcount\n", op)
			fmt.Printf("\t%.3f\t%.3f\t%.3f\t%d\n", q[0]*1e3, q[1]*1e3, q[2]*1e3, count)
		} else if scraper.resets > 0 {
			fmt.Println("# server-side counters went backwards over the window (daemon restart?); quantiles invalidated")
		} else {
			fmt.Println("# server-side histogram unchanged over the window; nothing to report")
		}
	}
	fmt.Printf("client_transport\tattempts=%d\tretries=%d\tredials=%d\n",
		total.Stats.Attempts, total.Stats.Retries, total.Stats.Redials)
}

// quantileSorted returns the q-quantile of an ascending sample slice by the
// nearest-rank definition: the smallest element with at least ⌈q·n⌉
// observations at or below it. The previous int(q·(n−1)) truncation rounded
// every rank down, reporting p99/p999 one element low on almost every
// sample size — a tail-flattering bias exactly where tails matter.
func quantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}
