package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fafnet/internal/sim"
)

func TestParseList(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		def     []float64
		want    []float64
		wantErr bool
	}{
		{"empty uses default", "", []float64{1, 2}, []float64{1, 2}, false},
		{"single", "0.5", nil, []float64{0.5}, false},
		{"list with spaces", "0.1, 0.2 ,0.3", nil, []float64{0.1, 0.2, 0.3}, false},
		{"garbage", "a,b", nil, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := parseList(tt.in, tt.def)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr %v", err, tt.wantErr)
			}
			if err != nil {
				return
			}
			if len(got) != len(tt.want) {
				t.Fatalf("got %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Errorf("got %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestWriteCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	series := []sim.Series{
		{Label: "U=0.3", Points: []sim.Point{{X: 0, AP: 0.71, CI: 0.04}, {X: 1, AP: 0.66, CI: 0.05}}},
	}
	if err := writeCSV(path, "beta", []float64{0, 1}, series); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(string(raw))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][0] != "beta" || rows[0][1] != "U=0.3" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][1] != "0.7100" {
		t.Errorf("data = %v", rows[1])
	}
}

func TestRenderChart(t *testing.T) {
	series := []sim.Series{
		{Label: "U=0.3", Points: []sim.Point{{X: 0, AP: 0.7}, {X: 1, AP: 0.6}}},
	}
	out := renderChart("title", "beta", series)
	if !strings.Contains(out, "title") || !strings.Contains(out, "U=0.3") {
		t.Errorf("chart missing pieces:\n%s", out)
	}
}

func TestRunBetaSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	base := sim.Config{Requests: 15, Warmup: 3, Seed: 1}
	if err := runBeta(base, "0.4", "0.5", false); err != nil {
		t.Fatal(err)
	}
	if err := runLoad(base, "0.4", "0.5", false); err != nil {
		t.Fatal(err)
	}
	if err := runAblation(base, "0.4", 0.5, false); err != nil {
		t.Fatal(err)
	}
	if err := runBeta(base, "bogus", "", false); err == nil {
		t.Error("bad utils list should error")
	}
}
