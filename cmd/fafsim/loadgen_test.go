package main

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/signaling"
	"fafnet/internal/topo"
)

// startShardedDaemon serves an in-process sharded-pipeline signaling server
// and returns its address and pipeline for post-run inspection. Cleanup is
// registered on t.
func startShardedDaemon(t *testing.T) (string, *core.Sharded) {
	t.Helper()
	net0, err := topo.NewNetwork(topo.Default())
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := core.NewSharded(net0, core.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := signaling.NewShardedServer(pipe)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return l.Addr().String(), pipe
}

// TestClosedLoopLoadLeavesServerClean drives the closed-loop load driver
// against an in-process sharded daemon: it must hit the request bound, see
// a fault-free transport, and release everything before returning.
func TestClosedLoopLoadLeavesServerClean(t *testing.T) {
	addr, pipe := startShardedDaemon(t)
	res, _, err := executeLoad(loadConfig{
		Addr: addr, Mode: "closed", Workers: 3, Requests: 300, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportErrors != 0 || res.Ambiguous != 0 {
		t.Errorf("fault-free transport produced errors: %+v", res)
	}
	if decided := res.Admitted + res.Rejected; decided < 300 {
		t.Errorf("decided %d, want >= 300", decided)
	}
	if res.Admitted == 0 {
		t.Error("load admitted nothing")
	}
	// Warmup is zero, so every decision lands inside the window.
	if res.Measured == 0 || len(res.Lats) != res.Measured {
		t.Errorf("measured %d decisions with %d latency samples", res.Measured, len(res.Lats))
	}
	if res.Window <= 0 {
		t.Errorf("window %v, want > 0", res.Window)
	}
	if got := pipe.Active(); got != 0 {
		t.Errorf("load left %d connections admitted, want 0", got)
	}
}

// TestOpenLoopLoadPacesArrivals checks the open-loop mode completes a
// duration-bounded run cleanly at a modest rate.
func TestOpenLoopLoadPacesArrivals(t *testing.T) {
	addr, pipe := startShardedDaemon(t)
	res, _, err := executeLoad(loadConfig{
		Addr: addr, Mode: "open", Workers: 2, Rate: 2000,
		Duration: 250 * time.Millisecond, Warmup: 50 * time.Millisecond, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportErrors != 0 || res.Ambiguous != 0 {
		t.Errorf("fault-free transport produced errors: %+v", res)
	}
	if res.Measured == 0 {
		t.Error("no decisions inside the measurement window")
	}
	if got := pipe.Active(); got != 0 {
		t.Errorf("load left %d connections admitted, want 0", got)
	}
}

// TestLoadConfigValidation exercises runDaemonLoad's argument checks.
func TestLoadConfigValidation(t *testing.T) {
	cases := []loadConfig{
		{Mode: "closed", Workers: 4, Requests: 10},                           // no addr
		{Addr: "x", Mode: "closed", Workers: 0, Requests: 10},                // no workers
		{Addr: "x", Mode: "closed", Workers: 4},                              // unbounded
		{Addr: "x", Mode: "open", Workers: 4, Requests: 10},                  // open without rate
		{Addr: "x", Mode: "closed", Workers: 1000, Requests: 10, Rate: 1000}, // too many workers
	}
	for i, cfg := range cases {
		if err := runDaemonLoad(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

// TestLoadSmoke is the CI gate for the sharded pipeline's throughput: a
// short duration-bounded closed-loop run against an in-process daemon must
// sustain a conservative floor (the acceptance run in EXPERIMENTS.md E7 is
// over an order of magnitude higher) and must not leak goroutines.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke is not a -short test")
	}
	before := runtime.NumGoroutine()
	addr, pipe := startShardedDaemon(t)
	// The smoke measures the cache-amortized regime the daemon runs at
	// scale: a prefilled standing set with batched preview traffic, the
	// same shape as the E7 acceptance run (any state churn invalidates the
	// verdict cache and drops throughput to the analysis-bound hundreds
	// per second, which is a different regime with its own test above).
	res, _, err := executeLoad(loadConfig{
		Addr: addr, Mode: "closed", Workers: 4, PreviewFrac: 1.0, Prefill: 1, Batch: 512,
		Duration: time.Second, Warmup: 500 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TransportErrors != 0 {
		t.Errorf("transport errors: %+v", res)
	}
	if got := pipe.Active(); got != 0 {
		t.Errorf("load left %d connections admitted, want 0", got)
	}
	const floor = 5000.0
	got := float64(res.Measured) / res.Window.Seconds()
	t.Logf("sustained %.0f decisions/sec over %v (%d decisions)", got, res.Window, res.Measured)
	if got < floor {
		t.Errorf("sustained %.0f decisions/sec, floor %.0f", got, floor)
	}
	// Workers and their clients are done; only the server (shut down by
	// cleanup) remains. Poll because connection goroutines unwind async.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Errorf("goroutine leak: %d before, %d after\n%s", before, n, buf[:runtime.Stack(buf, true)])
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestHistScraperDeltaQuantiles feeds the scraper two canned expositions
// and checks the interpolated quantiles of the bucket deltas.
func TestHistScraperDeltaQuantiles(t *testing.T) {
	exposition := func(c1, c2, cInf uint64) string {
		return "# HELP fafnet_signaling_op_seconds latency\n" +
			"# TYPE fafnet_signaling_op_seconds histogram\n" +
			fmt.Sprintf("fafnet_signaling_op_seconds_bucket{op=\"admit\",le=\"0.001\"} %d\n", c1) +
			fmt.Sprintf("fafnet_signaling_op_seconds_bucket{op=\"admit\",le=\"0.01\"} %d\n", c2) +
			fmt.Sprintf("fafnet_signaling_op_seconds_bucket{op=\"admit\",le=\"+Inf\"} %d\n", cInf) +
			"fafnet_signaling_op_seconds_bucket{op=\"release\",le=\"+Inf\"} 999\n" +
			fmt.Sprintf("fafnet_signaling_op_seconds_count{op=\"admit\"} %d\n", cInf)
	}
	bodies := []string{exposition(10, 10, 10), exposition(60, 100, 110)}
	call := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, bodies[call])
		call++
	}))
	defer ts.Close()

	s := &histScraper{url: ts.URL, metric: "fafnet_signaling_op_seconds", label: `op="admit"`}
	if err := s.snapshotBefore(); err != nil {
		t.Fatal(err)
	}
	if err := s.snapshotAfter(); err != nil {
		t.Fatal(err)
	}
	// Deltas: 50 in (0, 1ms], 40 in (1ms, 10ms], 10 above 10ms; total 100.
	qs, count, ok := s.deltaQuantiles([]float64{0.5, 0.9, 0.99})
	if !ok {
		t.Fatal("no delta reported")
	}
	if count != 100 {
		t.Errorf("count %d, want 100", count)
	}
	// p50 interpolates inside the first bucket: rank 50 of 50 -> 1ms.
	if math.Abs(qs[0]-0.001) > 1e-9 {
		t.Errorf("p50 %v, want 0.001", qs[0])
	}
	// p90: rank 90, first bucket holds 50, second spans (0.001, 0.01] with
	// 40 -> 0.001 + 0.009*(90-50)/40 = 0.01.
	if math.Abs(qs[1]-0.01) > 1e-9 {
		t.Errorf("p90 %v, want 0.01", qs[1])
	}
	// p99 lands in the open-ended bucket -> reported as its lower edge.
	if math.Abs(qs[2]-0.01) > 1e-9 {
		t.Errorf("p99 %v, want 0.01", qs[2])
	}
}

// TestHistScraperNoMovement reports ok=false when the histogram did not
// change between snapshots.
func TestHistScraperNoMovement(t *testing.T) {
	s := &histScraper{
		before: map[float64]uint64{0.001: 5, math.Inf(1): 5},
		after:  map[float64]uint64{0.001: 5, math.Inf(1): 5},
	}
	if _, _, ok := s.deltaQuantiles([]float64{0.5}); ok {
		t.Error("unchanged histogram reported quantiles")
	}
}

// TestHistScraperCounterReset feeds the scraper a canned exposition whose
// second snapshot has LOWER cumulative counts — what a restarted daemon
// exposes. The window must be invalidated (ok=false) and the reset counted;
// the pre-fix code subtracted the uint64s straight, wrapped to ~2^64 deltas
// and reported garbage quantiles with full confidence.
func TestHistScraperCounterReset(t *testing.T) {
	exposition := func(c1, cInf uint64) string {
		return "# TYPE fafnet_signaling_op_seconds histogram\n" +
			fmt.Sprintf("fafnet_signaling_op_seconds_bucket{op=\"admit\",le=\"0.001\"} %d\n", c1) +
			fmt.Sprintf("fafnet_signaling_op_seconds_bucket{op=\"admit\",le=\"+Inf\"} %d\n", cInf)
	}
	// Before: long-lived daemon. After: restarted, counters back near zero
	// (but nonzero, so the no-movement path cannot mask the bug).
	bodies := []string{exposition(500, 900), exposition(3, 7)}
	call := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, bodies[call])
		call++
	}))
	defer ts.Close()

	s := &histScraper{url: ts.URL, metric: "fafnet_signaling_op_seconds", label: `op="admit"`}
	if err := s.snapshotBefore(); err != nil {
		t.Fatal(err)
	}
	if err := s.snapshotAfter(); err != nil {
		t.Fatal(err)
	}
	qs, count, ok := s.deltaQuantiles([]float64{0.5})
	if ok {
		t.Fatalf("counter reset reported quantiles %v (count %d); window must be invalidated", qs, count)
	}
	if s.resets != 1 {
		t.Fatalf("resets = %d, want 1", s.resets)
	}
}

// TestParseLE covers the label extraction corner cases.
func TestParseLE(t *testing.T) {
	if v, ok := parseLE(`op="admit",le="0.25"`); !ok || v != 0.25 {
		t.Errorf("got %v %v", v, ok)
	}
	if v, ok := parseLE(`le="+Inf"`); !ok || !math.IsInf(v, 1) {
		t.Errorf("got %v %v", v, ok)
	}
	if _, ok := parseLE(`op="admit"`); ok {
		t.Error("missing le parsed")
	}
}

// TestQuantileSorted pins the nearest-rank helper: the q-quantile is the
// smallest element with at least ⌈q·n⌉ observations at or below it. The
// n=10 rows are the regression for the truncation bug — int(q·(n−1)) put
// p50 at index 4 and p99 at index 8, one element low.
func TestQuantileSorted(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"q0 clamps to min", []float64{1, 2, 3, 4, 5}, 0, 1},
		{"q1 is max", []float64{1, 2, 3, 4, 5}, 1, 5},
		{"empty", nil, 0.5, 0},
		{"p50 of 5", []float64{1, 2, 3, 4, 5}, 0.5, 3},
		{"p50 of 10 is rank 5", ten, 0.50, 5},
		{"p90 of 10 is rank 9", ten, 0.90, 9},
		{"p99 of 10 is the max", ten, 0.99, 10},
		{"p999 of 10 is the max", ten, 0.999, 10},
		{"p99 of 100 is rank 99", seq(100), 0.99, 99},
		{"p999 of 1000 is rank 999", seq(1000), 0.999, 999},
	}
	for _, tc := range cases {
		if got := quantileSorted(tc.xs, tc.q); got != tc.want {
			t.Errorf("%s: quantileSorted(n=%d, q=%v) = %v, want %v", tc.name, len(tc.xs), tc.q, got, tc.want)
		}
	}
}

// seq returns [1, 2, ..., n] as float64s.
func seq(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}
