// Command fafsim regenerates the paper's evaluation figures: admission
// probability against β (Figure 7), against offered utilization (Figure 8),
// and the allocation-rule ablation (experiment E4 in DESIGN.md).
//
// Usage:
//
//	fafsim -experiment beta  [-requests 400] [-seed 1] [-plot]
//	fafsim -experiment load  [-requests 400] [-seed 1] [-plot]
//	fafsim -experiment ablation [-beta 0.5]
//	fafsim -experiment daemon -daemon-addr 127.0.0.1:7447 [-requests 40] [-seed 1]
//	fafsim -experiment daemon -daemon-mode closed -daemon-addr ... -workers 8 -requests 1000000
//	fafsim -experiment daemon -daemon-mode open -daemon-addr ... -workers 8 -rate 50000 -duration 30s
//
// The daemon experiment drives a live fafcacd over the signaling protocol
// (through the retrying client) instead of an in-process controller, and
// releases everything it admitted before exiting. -daemon-mode selects the
// driver: legacy (default) is the original single-worker smoke; closed runs
// -workers workers flat out until -requests decisions or -duration elapses;
// open paces arrivals at -rate decisions/sec split across workers and
// charges latency from each request's scheduled start. Both load modes
// exclude a -daemon-warmup window from statistics and, with -daemon-metrics
// pointing at the daemon's /metrics endpoint, also report server-side admit
// latency quantiles from histogram bucket deltas over the window (E7 in
// EXPERIMENTS.md).
//
// Output is a tab-separated table (one row per swept point, one column per
// series), optionally followed by an ASCII chart.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"fafnet/internal/core"
	"fafnet/internal/obs"
	"fafnet/internal/plot"
	"fafnet/internal/sim"
)

func main() {
	var (
		experiment = flag.String("experiment", "beta", "beta (Figure 7), load (Figure 8), ablation (E4), reasons, or daemon")
		daemonAddr = flag.String("daemon-addr", "", "fafcacd address for the daemon experiment")
		daemonMode = flag.String("daemon-mode", "legacy", "daemon driver: legacy, closed (closed-loop load), or open (paced arrivals)")
		workers    = flag.Int("workers", 4, "concurrent load workers for -daemon-mode closed/open")
		duration   = flag.Duration("duration", 0, "measurement window for -daemon-mode closed/open (0 = until -requests)")
		loadWarmup = flag.Duration("daemon-warmup", time.Second, "warmup excluded from load statistics in -daemon-mode closed/open")
		rate       = flag.Float64("rate", 0, "aggregate arrivals/sec for -daemon-mode open")
		prevFrac   = flag.Float64("preview-frac", 0, "fraction of load decisions issued as cache-friendly previews (0 = pure admit/release churn)")
		prefill    = flag.Int("prefill", 0, "standing connections each load worker admits and holds before measuring")
		batchSize  = flag.Int("batch", 1, "previews per round trip (previewBatch op) in the load modes")
		daemonMet  = flag.String("daemon-metrics", "", "fafcacd /metrics URL to scrape for server-side latency over the window")
		calibrate  = flag.Bool("calibrate", false, "run the calibration sweep (E11) instead of an -experiment")
		scenarios  = flag.Int("scenarios", 100, "randomized scenarios in the -calibrate sweep")
		requests   = flag.Int("requests", 400, "admission requests counted per point")
		warmup     = flag.Int("warmup", 50, "requests excluded from statistics")
		seed       = flag.Int64("seed", 1, "base random seed")
		beta       = flag.Float64("beta", 0.5, "beta for the ablation experiment")
		destBias   = flag.Float64("dest-bias", 0, "probability a request targets the hot ring 0 (asymmetric load)")
		utilsFlag  = flag.String("utils", "", "comma-separated utilizations (defaults per experiment)")
		betasFlag  = flag.String("betas", "", "comma-separated betas (defaults per experiment)")
		doPlot     = flag.Bool("plot", false, "render an ASCII chart after the table")
		searchIter = flag.Int("search-iters", 12, "binary-search iterations in the CAC")
		csvPath    = flag.String("csv", "", "also write the swept series to this CSV file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		metricsDmp = flag.Bool("metrics-dump", false, "write a Prometheus-format metrics snapshot to stderr after the run")
	)
	flag.Parse()
	csvOut = *csvPath

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafsim:", err)
		os.Exit(1)
	}

	base := sim.Config{
		Requests: *requests,
		Warmup:   *warmup,
		Seed:     *seed,
		DestBias: *destBias,
		CAC:      core.Options{SearchIters: *searchIter},
	}

	// -calibrate is a mode of its own, not an -experiment value, so the two
	// flags cannot silently shadow each other.
	exp := *experiment
	if *calibrate {
		exp = "calibrate"
	}
	switch exp {
	case "calibrate":
		err = runCalibrate(*scenarios, *seed, *searchIter)
	case "beta":
		err = runBeta(base, *utilsFlag, *betasFlag, *doPlot)
	case "load":
		err = runLoad(base, *utilsFlag, *betasFlag, *doPlot)
	case "ablation":
		err = runAblation(base, *utilsFlag, *beta, *doPlot)
	case "reasons":
		err = runReasons(base, *utilsFlag, *betasFlag)
	case "daemon":
		switch *daemonMode {
		case "", "legacy":
			err = runDaemon(*daemonAddr, *requests, *seed)
		case "closed", "open":
			// -requests defaults to 400 for the sweep experiments; a
			// duration-bounded load run should not inherit that as a
			// decision target unless the flag was set explicitly.
			reqTarget := *requests
			if *duration > 0 && !flagWasSet("requests") {
				reqTarget = 0
			}
			err = runDaemonLoad(loadConfig{
				Addr:        *daemonAddr,
				Mode:        *daemonMode,
				Workers:     *workers,
				Requests:    reqTarget,
				Duration:    *duration,
				Warmup:      *loadWarmup,
				Rate:        *rate,
				Seed:        *seed,
				PreviewFrac: *prevFrac,
				Prefill:     *prefill,
				Batch:       *batchSize,
				MetricsURL:  *daemonMet,
			})
		default:
			err = fmt.Errorf("unknown -daemon-mode %q (want legacy, closed, or open)", *daemonMode)
		}
	default:
		err = fmt.Errorf("unknown experiment %q (want beta, load, ablation, reasons, or daemon)", *experiment)
	}
	// Flush profiles explicitly: os.Exit skips deferred calls, and a run that
	// fails half-way is exactly the one worth profiling.
	stopProfiles()
	if *metricsDmp {
		// Stderr so the stdout tables stay machine-parseable; dumped even on
		// failure — a half-finished sweep's counters aid the diagnosis.
		if werr := obs.Default.WritePrometheus(os.Stderr); werr != nil {
			fmt.Fprintln(os.Stderr, "fafsim: metrics dump:", werr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fafsim:", err)
		os.Exit(1)
	}
}

// flagWasSet reports whether the named flag appeared on the command line
// (as opposed to holding its default value).
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// startProfiles begins CPU profiling and/or arranges a heap snapshot, as
// requested. The returned stop function is idempotent-safe to call once at
// exit; it finishes the CPU profile and writes the heap profile.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath == "" && memPath == "" {
		return stop, nil
	}
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return stop, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			if cerr := cpuFile.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "fafsim: cpuprofile:", cerr)
			}
			return stop, err
		}
	}
	stop = func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				// The profile on disk may be truncated; better a warning
				// than a silently unusable pprof file.
				fmt.Fprintln(os.Stderr, "fafsim: cpuprofile:", err)
			}
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fafsim: memprofile:", err)
			return
		}
		runtime.GC() // settle the heap so the snapshot shows live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "fafsim: memprofile:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "fafsim: memprofile:", err)
		}
	}
	return stop, nil
}

func parseList(s string, def []float64) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func runBeta(base sim.Config, utilsFlag, betasFlag string, doPlot bool) error {
	utils, err := parseList(utilsFlag, []float64{0.3, 0.6, 0.9})
	if err != nil {
		return err
	}
	betas, err := parseList(betasFlag, []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	if err != nil {
		return err
	}
	fmt.Println("# Figure 7: sensitivity of beta (admission probability)")
	series, err := sim.BetaSweep(base, utils, betas)
	if err != nil {
		return err
	}
	printTable("beta", betas, series)
	if doPlot {
		fmt.Println(renderChart("Figure 7: AP vs beta", "beta", series))
	}
	return nil
}

func runLoad(base sim.Config, utilsFlag, betasFlag string, doPlot bool) error {
	betas, err := parseList(betasFlag, []float64{0, 0.5, 1.0})
	if err != nil {
		return err
	}
	utils, err := parseList(utilsFlag, []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	if err != nil {
		return err
	}
	fmt.Println("# Figure 8: sensitivity of system load (admission probability)")
	series, err := sim.LoadSweep(base, betas, utils)
	if err != nil {
		return err
	}
	printTable("U", utils, series)
	if doPlot {
		fmt.Println(renderChart("Figure 8: AP vs offered utilization", "U", series))
	}
	return nil
}

func runAblation(base sim.Config, utilsFlag string, beta float64, doPlot bool) error {
	utils, err := parseList(utilsFlag, []float64{0.3, 0.6, 0.9})
	if err != nil {
		return err
	}
	base.CAC.Beta = beta
	base.CAC.BetaSet = true
	rules := []core.Rule{core.RuleProportional, core.RuleFixedSplit, core.RuleSenderBiased}
	fmt.Printf("# E4: allocation-rule ablation at beta=%.2g (admission probability)\n", beta)
	series, err := sim.RuleSweep(base, rules, utils)
	if err != nil {
		return err
	}
	printTable("U", utils, series)
	if doPlot {
		fmt.Println(renderChart("E4: AP by allocation rule", "U", series))
	}
	return nil
}

// runReasons diagnoses WHY β's extremes lose (Section 5.3's two failure
// modes): the rejection-reason mix and the mean slack left to admitted
// connections, per β at one load level.
func runReasons(base sim.Config, utilsFlag, betasFlag string) error {
	utils, err := parseList(utilsFlag, []float64{0.9})
	if err != nil {
		return err
	}
	betas, err := parseList(betasFlag, []float64{0, 0.25, 0.5, 0.75, 1.0})
	if err != nil {
		return err
	}
	fmt.Println("# Rejection diagnosis: why the beta extremes lose")
	fmt.Println("U\tbeta\tAP\trej_tight_deadlines\trej_no_bandwidth\tmean_slack_ms\tmean_active")
	for _, u := range utils {
		for i, beta := range betas {
			cfg := base
			cfg.Utilization = u
			cfg.CAC.Beta = beta
			cfg.CAC.BetaSet = true
			cfg.Seed = pointSeedExported(base.Seed, i)
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%.2g\t%.2g\t%.4f\t%d\t%d\t%.2f\t%.2f\n",
				u, beta, res.AP.Value(),
				res.Rejections[core.ReasonInfeasible],
				res.Rejections[core.ReasonNoBandwidth],
				res.SlackAtAdmission.Mean()*1e3,
				res.MeanActive)
		}
	}
	return nil
}

// pointSeedExported derives per-point seeds for the reasons experiment.
func pointSeedExported(base int64, point int) int64 { return base + int64(point)*7919 }

// csvOut, when non-empty, duplicates every printed table into a CSV file.
var csvOut string

// printTable writes one row per x value with AP±CI per series, and
// optionally mirrors the data as CSV.
func printTable(xName string, xs []float64, series []sim.Series) {
	var b strings.Builder
	b.WriteString(xName)
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s\tci", s.Label)
	}
	fmt.Println(b.String())
	for i, x := range xs {
		b.Reset()
		fmt.Fprintf(&b, "%.3g", x)
		for _, s := range series {
			fmt.Fprintf(&b, "\t%.4f\t%.4f", s.Points[i].AP, s.Points[i].CI)
		}
		fmt.Println(b.String())
	}
	if csvOut == "" {
		return
	}
	if err := writeCSV(csvOut, xName, xs, series); err != nil {
		fmt.Fprintln(os.Stderr, "fafsim: writing csv:", err)
	}
}

// writeCSV stores the series in RFC-4180 form for external plotting.
func writeCSV(path, xName string, xs []float64, series []sim.Series) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	defer func() {
		// Close is the last write on this path; its error is the caller's
		// only signal that the CSV on disk is short.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	w := csv.NewWriter(f)
	header := []string{xName}
	for _, s := range series {
		header = append(header, s.Label, s.Label+"_ci")
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i, x := range xs {
		row := []string{strconv.FormatFloat(x, 'g', -1, 64)}
		for _, s := range series {
			row = append(row,
				strconv.FormatFloat(s.Points[i].AP, 'f', 4, 64),
				strconv.FormatFloat(s.Points[i].CI, 'f', 4, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// renderChart converts sweep series into the ASCII plot format.
func renderChart(title, xLabel string, series []sim.Series) string {
	ps := make([]plot.Series, len(series))
	for i, s := range series {
		xs := make([]float64, len(s.Points))
		ys := make([]float64, len(s.Points))
		for j, p := range s.Points {
			xs[j], ys[j] = p.X, p.AP
		}
		ps[i] = plot.Series{Label: s.Label, X: xs, Y: ys}
	}
	c := plot.Chart{Title: title, XLabel: xLabel, YFixed: true, YMin: 0, YMax: 1, Width: 60, Height: 16}
	return c.Render(ps)
}
