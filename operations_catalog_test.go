package fafnet_test

import (
	"os"
	"regexp"
	"sort"
	"strings"
	"testing"

	"fafnet/internal/obs"

	// Blank imports pull in every instrumented package so its metrics
	// register with obs.Default; the test then checks OPERATIONS.md's
	// catalog against the live registry in both directions.
	_ "fafnet/internal/atm"
	_ "fafnet/internal/core"
	_ "fafnet/internal/fddi"
	_ "fafnet/internal/signaling"
	_ "fafnet/internal/sim"
)

// metricToken matches a metric name wherever OPERATIONS.md mentions one,
// including exposition-level forms like fafnet_cac_decide_seconds_bucket.
var metricToken = regexp.MustCompile(`fafnet_[a-z0-9_]+`)

// normalize strips the histogram exposition suffixes so documented
// _bucket/_sum/_count mentions map back to their registered family.
func normalize(name string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suffix)
	}
	return name
}

// TestOperationsCatalogMatchesRegistry fails when OPERATIONS.md and the
// metric registry drift apart: every registered metric must be documented,
// and every documented fafnet_* name must exist. Renaming or adding a
// metric therefore forces the operator docs to follow.
func TestOperationsCatalogMatchesRegistry(t *testing.T) {
	doc, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	documented := make(map[string]bool)
	for _, tok := range metricToken.FindAllString(string(doc), -1) {
		documented[normalize(tok)] = true
	}

	registered := make(map[string]bool)
	for _, name := range obs.Default.Names() {
		registered[name] = true
	}
	if len(registered) == 0 {
		t.Fatal("no metrics registered — are the instrumented packages imported?")
	}

	var missing, stale []string
	for name := range registered {
		if !documented[name] {
			missing = append(missing, name)
		}
	}
	for name := range documented {
		if !registered[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, name := range missing {
		t.Errorf("metric %s is registered but missing from OPERATIONS.md", name)
	}
	for _, name := range stale {
		t.Errorf("OPERATIONS.md documents %s, which no package registers", name)
	}
}
