// Benchmarks, one per reproduced experiment (see the experiment index in
// DESIGN.md), plus micro-benchmarks of the analysis primitives they are
// built from. The experiment benches run scaled-down versions of the full
// sweeps driven by cmd/fafsim and cmd/faftrace, and report the admission
// probability they measured via ReportMetric so a bench run doubles as a
// sanity check of the figures' shape.
package fafnet_test

import (
	"fmt"
	"testing"

	"fafnet"
	"fafnet/internal/atm"
	"fafnet/internal/core"
	"fafnet/internal/fddi"
	"fafnet/internal/packetsim"
	"fafnet/internal/sim"
	"fafnet/internal/tokenring"
	"fafnet/internal/topo"
	"fafnet/internal/traffic"
)

// benchSimConfig is the scaled-down Section 6 run used inside benchmarks.
func benchSimConfig(u, beta float64, seed int64) sim.Config {
	return sim.Config{
		Utilization: u,
		Requests:    40,
		Warmup:      8,
		Seed:        seed,
		CAC:         core.Options{Beta: beta, BetaSet: true, SearchIters: 10},
	}
}

// BenchmarkFigure7 reproduces one point of Figure 7 (AP vs β) per
// sub-benchmark: the three β extremes at the paper's three load levels.
func BenchmarkFigure7(b *testing.B) {
	for _, u := range []float64{0.3, 0.6, 0.9} {
		for _, beta := range []float64{0, 0.5, 1} {
			b.Run(fmt.Sprintf("U%.1f/beta%.1f", u, beta), func(b *testing.B) {
				var ap float64
				for i := 0; i < b.N; i++ {
					res, err := sim.Run(benchSimConfig(u, beta, int64(i)+1))
					if err != nil {
						b.Fatal(err)
					}
					ap = res.AP.Value()
				}
				b.ReportMetric(ap, "AP")
			})
		}
	}
}

// BenchmarkFigure8 reproduces one point of Figure 8 (AP vs U) per
// sub-benchmark at the paper's recommended β = 0.5.
func BenchmarkFigure8(b *testing.B) {
	for _, u := range []float64{0.2, 0.5, 0.8, 1.0} {
		b.Run(fmt.Sprintf("U%.1f", u), func(b *testing.B) {
			var ap float64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(benchSimConfig(u, 0.5, int64(i)+1))
				if err != nil {
					b.Fatal(err)
				}
				ap = res.AP.Value()
			}
			b.ReportMetric(ap, "AP")
		})
	}
}

// BenchmarkAblationAllocationRule is experiment E4: the proportional rule
// of Section 5.3 against the fixed-split and sender-biased baselines.
func BenchmarkAblationAllocationRule(b *testing.B) {
	for _, rule := range []core.Rule{core.RuleProportional, core.RuleFixedSplit, core.RuleSenderBiased} {
		b.Run(rule.String(), func(b *testing.B) {
			var ap float64
			for i := 0; i < b.N; i++ {
				cfg := benchSimConfig(0.8, 0.5, int64(i)+1)
				cfg.CAC.Rule = rule
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				ap = res.AP.Value()
			}
			b.ReportMetric(ap, "AP")
		})
	}
}

// benchConnections admits n connections through a fresh controller.
func benchConnections(b *testing.B, n int) (topo.Config, *core.Controller) {
	b.Helper()
	topoCfg := topo.Default()
	net, err := topo.NewNetwork(topoCfg)
	if err != nil {
		b.Fatal(err)
	}
	ctl, err := core.NewController(net, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		spec := core.ConnSpec{
			ID:       fmt.Sprintf("bg%d", i),
			Src:      topo.HostID{Ring: i % 3, Index: i / 3},
			Dst:      topo.HostID{Ring: (i + 1) % 3, Index: i / 3},
			Source:   src,
			Deadline: 0.070,
		}
		dec, err := ctl.RequestAdmission(spec)
		if err != nil {
			b.Fatal(err)
		}
		if !dec.Admitted {
			b.Fatalf("background connection %d rejected: %s", i, dec.Reason)
		}
	}
	return topoCfg, ctl
}

// BenchmarkValidationE3 runs the packet-level bound validation with four
// admitted connections for a short simulated span.
func BenchmarkValidationE3(b *testing.B) {
	topoCfg, ctl := benchConnections(b, 4)
	conns := ctl.Connections()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := packetsim.Run(packetsim.Config{
			Topology:    topoCfg,
			Connections: conns,
			Duration:    0.25,
			Seed:        int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllWithinBounds() {
			b.Fatal("bound violation")
		}
	}
}

// BenchmarkCACAdmit is experiment E6: the cost of one admission decision as
// the number of already-active connections grows.
func BenchmarkCACAdmit(b *testing.B) {
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	for _, active := range []int{0, 3, 6, 9} {
		b.Run(fmt.Sprintf("active%d", active), func(b *testing.B) {
			_, ctl := benchConnections(b, active)
			spec := core.ConnSpec{
				ID:       "probe",
				Src:      fafnet.HostID{Ring: 0, Index: 3},
				Dst:      fafnet.HostID{Ring: 2, Index: 3},
				Source:   src,
				Deadline: 0.070,
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dec, err := ctl.RequestAdmission(spec)
				if err != nil {
					b.Fatal(err)
				}
				if dec.Admitted {
					ctl.Release("probe")
				}
			}
		})
	}
}

// BenchmarkDelayAnalysis measures one full-network worst-case evaluation —
// the inner loop of every CAC probe.
func BenchmarkDelayAnalysis(b *testing.B) {
	_, ctl := benchConnections(b, 6)
	net := ctl.Network()
	an, err := core.NewAnalyzer(net, core.AnalysisOptions{})
	if err != nil {
		b.Fatal(err)
	}
	conns := ctl.Connections()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.Delays(conns); err != nil {
			b.Fatal(err)
		}
		// Fresh analyzer every 8 rounds so the bench reflects a mix of
		// cold and warm MAC caches, as the CAC sees.
		if i%8 == 7 {
			an, err = core.NewAnalyzer(net, core.AnalysisOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkMACAnalysis measures Theorem 1 on the paper's workload.
func BenchmarkMACAnalysis(b *testing.B) {
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	params := fddi.MACParams{Ring: topo.Default().Ring, H: 1e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fddi.AnalyzeMAC(src, params, fddi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMuxAnalysis measures the FIFO output-port bound with six
// paper-workload inputs.
func BenchmarkMuxAnalysis(b *testing.B) {
	var inputs []traffic.Descriptor
	for i := 0; i < 6; i++ {
		d, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
		if err != nil {
			b.Fatal(err)
		}
		inputs = append(inputs, d)
	}
	p := atm.MuxParams{CapacityBps: atm.PayloadCapacity(atm.DefaultLinkBps)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atm.AnalyzeMux(inputs, p, atm.MuxOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPriorityMuxAnalysis measures the E8 static-priority port bound
// with two classes of three paper-workload connections each.
func BenchmarkPriorityMuxAnalysis(b *testing.B) {
	mk := func() []traffic.Descriptor {
		var out []traffic.Descriptor
		for i := 0; i < 3; i++ {
			d, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, d)
		}
		return out
	}
	classes := []atm.PriorityClass{{Inputs: mk()}, {Inputs: mk()}}
	p := atm.MuxParams{CapacityBps: atm.PayloadCapacity(atm.DefaultLinkBps)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := atm.AnalyzePriorityMux(classes, p, atm.MuxOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTokenRingCAC is experiment E5: the 802.5_MAC analysis of the
// Section 7 extension.
func BenchmarkTokenRingCAC(b *testing.B) {
	src, err := traffic.NewPeriodic(10e3, 0.010, 16e6)
	if err != nil {
		b.Fatal(err)
	}
	params := tokenring.MACParams{Ring: tokenring.DefaultRingConfig(), THT: 2e-3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tokenring.AnalyzeMAC(src, params, fddi.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvelopeEval measures a single Γ(I) evaluation through a
// realistic transform chain (MAC output → conversion → two mux outputs).
func BenchmarkEnvelopeEval(b *testing.B) {
	src, err := traffic.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		b.Fatal(err)
	}
	mac, err := fddi.AnalyzeMAC(src, fddi.MACParams{Ring: topo.Default().Ring, H: 1e-3}, fddi.Options{})
	if err != nil {
		b.Fatal(err)
	}
	q, err := traffic.NewQuantized(mac.Output, 36000, 94*384)
	if err != nil {
		b.Fatal(err)
	}
	d1, err := traffic.NewDelayed(q, 0.4e-3, 140e6)
	if err != nil {
		b.Fatal(err)
	}
	d2, err := traffic.NewDelayed(d1, 0.2e-3, 140e6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += d2.Bits(float64(i%100+1) * 1e-4)
	}
	_ = sink
}
