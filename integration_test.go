package fafnet_test

import (
	"fmt"
	"math"
	"testing"

	"fafnet"
	"fafnet/internal/des"
	"fafnet/internal/units"
)

// TestEndToEndAdmitValidateRelease is the full-stack integration exercise:
// admit a churning mix of connections through the CAC, validate each stable
// configuration with the packet-level simulator under async background
// stress and random phases, release, and repeat. Every measured delay must
// stay within its bound at every stage.
func TestEndToEndAdmitValidateRelease(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack integration in -short mode")
	}
	topology := fafnet.DefaultTopology()
	net, err := fafnet.NewNetwork(topology)
	if err != nil {
		t.Fatal(err)
	}
	cac, err := fafnet.NewController(net, fafnet.Options{Beta: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	video, err := fafnet.NewDualPeriodic(50e3, 0.010, 10e3, 0.001, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	audio, err := fafnet.NewPeriodic(4e3, 0.004, 100e6)
	if err != nil {
		t.Fatal(err)
	}

	rng := des.NewRNG(99)
	hosts := net.Hosts()
	active := map[string]bool{}
	seq := 0
	validated := 0
	for round := 0; round < 12; round++ {
		// Churn: drop one active connection with probability 1/3.
		if len(active) > 0 && rng.Float64() < 0.34 {
			for id := range active {
				if !cac.Release(id) {
					t.Fatalf("release %s failed", id)
				}
				delete(active, id)
				break
			}
		}
		// Try one admission.
		src := hosts[rng.Intn(len(hosts))]
		if !cac.SourceBusy(src) {
			dst := hosts[rng.Intn(len(hosts))]
			if dst.Ring == src.Ring {
				dst.Ring = (dst.Ring + 1) % topology.NumRings
			}
			var source fafnet.Descriptor = video
			if seq%3 == 2 {
				source = audio
			}
			id := fmt.Sprintf("it%d", seq)
			seq++
			dec, err := cac.RequestAdmission(fafnet.ConnSpec{
				ID: id, Src: src, Dst: dst, Source: source,
				Deadline: 0.030 + 0.040*rng.Float64(),
			})
			if err != nil {
				t.Fatal(err)
			}
			if dec.Admitted {
				active[id] = true
			}
		}
		if len(active) == 0 || round%3 != 2 {
			continue
		}
		// Validate the current configuration at packet level.
		res, err := fafnet.Validate(fafnet.ValidationConfig{
			Topology:        topology,
			Connections:     cac.Connections(),
			Duration:        0.4,
			Seed:            int64(round),
			RandomPhases:    true,
			AsyncBackground: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		validated++
		for _, c := range res.PerConn {
			if !c.WithinBound() {
				t.Fatalf("round %d: %s measured %v exceeds bound %v",
					round, c.ID, c.Delays.Max(), c.Bound)
			}
		}
	}
	if validated < 2 {
		t.Fatalf("only %d validation rounds ran", validated)
	}
	// Final invariant: the CAC's own report is deadline-clean.
	report, err := cac.DelayReport()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cac.Connections() {
		d := report[c.ID]
		if math.IsInf(d, 1) || d > c.Deadline*(1+units.RelTol) {
			t.Errorf("%s: delay %v vs deadline %v", c.ID, d, c.Deadline)
		}
	}
}
